//! The `cascade` subcommands.

use std::path::{Path, PathBuf};
use std::time::Duration;

use cascade_analyze::oracle::{check_plan, Violation};
use cascade_analyze::plan::{plan_workload, Schedule, TransformPlan};
use cascade_analyze::{analyze_workload, WorkloadReport};
use cascade_core::{
    run_cascaded, run_sequential, run_unbounded, CascadeConfig, HelperPolicy, RunReport,
    UnboundedConfig,
};
use cascade_mem::{machines, MachineConfig};
use cascade_rt::{
    ckpt, try_run_cascaded, try_run_cascaded_observed, try_run_governed, CancelToken, CkptMeta,
    CkptPolicy, CkptSink, CkptWriter, FaultEvent, FaultKind, FaultPlan, FaultyKernel, Observe,
    RealKernel, RetryPolicy, RtPolicy, RunConfig, RunError, RunnerConfig, SpecProgram, Tolerance,
    VerifyPolicy,
};
use cascade_synth::{Synth, Variant};
use cascade_trace::{from_text, to_text, Arena, Workload};
use cascade_wave5::{Parmvr, ParmvrParams};

use cascade_core::ChunkPlan;
use cascade_trace::{
    reuse_distances, stride_histogram, AddressSpace, IndexStore, LoopSpec, Mode, Pattern, Resolver,
    Severity, StreamRef, TraceRef,
};

use crate::args::{ArgError, Args};

/// Usage text.
pub fn help() -> String {
    "\
cascade — cascaded execution (IPPS 1999) reproduction

USAGE:
  cascade machines
      Print the simulated machines (paper Table 1).

  cascade sim [options]
      Simulate cascaded execution and report speedup vs. the sequential
      baseline.
        --workload parmvr|synth-dense|synth-sparse   (default parmvr)
        --scale F          workload scale for parmvr (default 0.25)
        --n N              vector length for synth workloads (default 4194304)
        --seed N           workload seed (default 42)
        --machine ppro|r10000                        (default ppro)
        --future K         scale the machine's memory latency by K
        --procs N          processors (default 4)
        --chunk BYTES      chunk size, accepts K/M suffix (default 64K)
        --policy none|prefetch|restructure|restructure+hoist
                                                      (default restructure+hoist)
        --calls N          invocations, last measured (default 2)
        --no-jump-out      stall the token instead of abandoning helpers
        --unbounded        use the paper's unbounded-processor model
        --per-loop         per-loop table instead of one-line summary

  cascade rt [options]
      Run the workload on real threads and verify bitwise equivalence
      with sequential execution.
        --workload/--scale/--n/--seed   as above
        --threads N        worker threads (default: available parallelism)
        --chunk-iters N    iterations per chunk (default 4096)
        --policy none|prefetch|restructure            (default restructure)
        --poll N           helper iterations between token polls (default 64)
        --verify off|checksum|every|sampled:K         (default off)
                           online verified execution: every chunk commit
                           publishes a write-footprint digest with the
                           token handoff; `every`/`sampled:K` also
                           replay-verify committed chunks against a
                           journaled private view before the next chunk
                           executes (docs/ROBUSTNESS.md)

  cascade run [options]
      Run the workload on real threads under an explicit execution
      mode and verify bitwise equivalence with sequential execution.
        --mode cascade|plan   (default plan)
                           cascade: the token-serialized runtime (as
                           `cascade rt`); plan: fission each loop under
                           its analyzer transformation plan and run
                           DOALL sub-loops as a static range split,
                           DOACROSS sub-loops as a post/wait pipeline,
                           and sequential residues cascaded — in plan
                           order. Opaque loops fall back to cascade.
        --workload/--scale/--n/--seed   as above
        --threads/--chunk-iters/--poll/--policy/--verify   as `rt`
                           (verification rides sequential/cascaded
                           stages; DOALL/DOACROSS stages have no
                           sequential handoff to checksum)

  cascade metrics [options]
      Phase-level observability report of one cascaded run: per-worker
      helper/spin/execute breakdown, token-handoff latency distribution,
      pack/prefetch byte counts, jump-outs and horizon stalls — in the
      schema shared by the simulator and the real-thread runtime
      (docs/OBSERVABILITY.md).
        --source rt|sim    real threads (default) or the simulator
        --workload/--scale/--n/--seed   as above
                           (default: quickstart-style synthetic loop,
                           n 65536)
        --loop N           loop index within the workload (default 0)
        --format text|json (default text)
        --events           include the timestamped phase-event ring
        --out FILE         write the report to a file instead of stdout
        rt:  --threads/--chunk-iters/--poll/--policy   as `rt`
        sim: --machine/--procs/--chunk/--policy        as `sim`

  cascade chaos [options]
      Fault-injection matrix against the real-thread runtime: random
      plans of panics, stalls and slowdowns. Each run must recover
      in-cascade (with --tolerance retry), salvage a bitwise
      sequential-identical result, or report a typed error.
      Exits 1 if any plan silently corrupts the result.
        --n N              vector length of the synth workloads (default 16384)
        --seed N           plan/workload seed (default 42)
        --plans N          number of fault plans (default 20)
        --max-threads N    thread counts sampled from 1..=N (default 4)
        --chunk-iters N    iterations per chunk (default 128)
        --watchdog-ms N    stall-detection window (default 25)
        --stall-ms N       injected stall duration (default 80)
        --tolerance retry|salvage|fail-fast           (default salvage)
                           retry: re-execute fail-stop chunks on healthy
                           workers, quarantining the failed thread
        --retry-budget N   chunk re-executions before falling through
                           to salvage (default 4, retry only)
        --retry-backoff-ms N  first stall backoff window, doubling per
                           strike (default 10, retry only)
        --mode cascade|plan                          (default cascade)
                           plan: point the matrix at the plan-driven
                           executor instead — randomized multi-writer
                           loops fissioned into DOALL/DOACROSS/
                           sequential sub-loops, with per-sub-loop
                           fault plans; same verdict rules
        --mid-mutation     also sample panics that fire *after* part of
                           a chunk's writes landed; recovery then rests
                           on the analyzer-bounded undo journal (the
                           synth kernels are journalable, so these must
                           recover, salvage, or report a typed error —
                           never corrupt)
        --cancel           also storm run governance: each plan gets a
                           canceller thread firing at a random point (or,
                           every third plan, a random run deadline); a
                           cancelled run must report the exact committed
                           prefix, and resuming sequentially from it must
                           be bitwise identical to straight sequential
        --kill             kill-restart storm instead: fork checkpointing
                           child runs, SIGKILL each at a random point,
                           resume from the surviving checkpoint and gate
                           on bitwise equality with an uninterrupted
                           sequential run
          --plans N        kill trials (default 6)
          --every is sampled per trial; --throttle-us N slows child
          chunks (default 300) so kills land mid-run; --kill-dir D keeps
          checkpoint dirs under D (default: temp, removed on success)
        --corrupt          silent-bit-flip storm instead: chunks execute
                           normally but XOR a byte inside (or, every 4th
                           plan, outside) their write footprint; the run
                           executes under an armed replaying verify
                           policy and every flip must be detected online
                           — repaired bitwise, or failed with a typed
                           error whose committed prefix resumes bitwise
                           (out-of-footprint flips are the arena
                           scrubber's catch). Exits 1 on any missed flip
                           or silent divergence.
          --verify every|sampled:K        (default every)
          --tolerance retry|salvage|fail-fast  as above (default retry:
          retry/salvage repair in place, fail-fast proves the typed
          error's clean prefix); --plans N flip plans (default 12)

  cascade resume [options]
      Restore a checkpointed run (written by a durable run or chaos
      --kill) and finish the loop sequentially from the committed
      prefix. Corrupted, torn or stale checkpoints are refused with a
      typed error — never silently resumed.
        --dir D            checkpoint directory (required)
        --verify           also replay the whole loop from the pristine
                           base snapshot and require the resumed state to
                           match bitwise (exit 1 on divergence)

  cascade sweep [options]
      Sweep one parameter of the simulated cascade.
        --param procs|chunk
        --values a,b,c     e.g. 2,4,8 or 4K,64K,1M
        (plus all `sim` options for the fixed parameters)

  cascade analyze [options]
      Reuse-distance / stride analysis of one loop's reference stream
      (original vs restructured execution stream over one chunk).
        --workload/--scale/--n/--seed   as above
        --loop N           loop index within the workload (default 0)
        --chunk BYTES      chunk to analyze (default 64K)
        --line BYTES       line granularity (default 32)

  cascade analyze --all [options]
      Static helper-safety report (cascade-analyze): per-operand lattice
      verdicts (packable | prefetchable | horizon_safe | unsafe) over the
      kernel suite and wave5. Exits 1 on any unsafe verdict or error
      diagnostic.
        --n N              kernel suite scale (default 4096)
        --seed N           kernel/wave5 seed (default 42)
        --scale F          wave5 scale (default 0.01)
        --format text|json (default text)
        --workload-file F  analyze one dumped workload instead

  cascade plan [--all] [options]
      Whole-loop transformation plans (cascade-analyze): statement-level
      dependence graph, SCC-condensed fission partition, per-sub-loop
      DOALL / DOACROSS / sequential schedules, and the per-kernel mode
      matrix (cascade | fission | DOACROSS | speculation-ready). Every
      plan is re-validated against the dynamic replay oracle; exits 1 if
      any plan is contradicted.
        --n N              kernel suite scale (default 4096)
        --seed N           kernel/wave5 seed (default 42)
        --scale F          wave5 scale (default 0.01)
        --format text|json (default text)
        --workload-file F  plan one dumped workload instead

  cascade dump [options]
      Serialize a workload to the text format (share/edit/replay).
        --workload/--scale/--n/--seed   as above
        --out FILE         write to a file instead of stdout

  cascade schedule [options]
      Render the cascade schedule of one loop as a timeline (Figure 1).
        --workload/--scale/--n/--seed/--machine/--policy   as above
        --loop N           loop index (default 0)
        --procs N          processors (default 3)
        --chunks N         approximate chunk count (default 12)
        --width N          chart width (default 72)

  Every workload option also accepts --workload-file FILE (a dump).
"
    .to_string()
}

fn machine_from(args: &Args) -> Result<MachineConfig, ArgError> {
    let m = match args.get("machine", "ppro").as_str() {
        "ppro" | "pentium-pro" | "pentiumpro" => machines::pentium_pro(),
        "r10000" | "r10k" => machines::r10000(),
        other => {
            return Err(ArgError::usage(format!(
                "unknown machine '{other}' (ppro|r10000)"
            )))
        }
    };
    match args.get_opt("future") {
        None => Ok(m),
        Some(k) => {
            let k: f64 = k
                .parse()
                .map_err(|_| ArgError::usage(format!("--future: cannot parse '{k}'")))?;
            Ok(machines::future(&m, k))
        }
    }
}

fn workload_from(args: &Args) -> Result<(Workload, Arena, String), ArgError> {
    let seed = args.get_num("seed", 42u64)?;
    if let Some(path) = args.get_opt("workload-file") {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ArgError::usage(format!("--workload-file {path}: {e}")))?;
        let workload = from_text(&text)
            .map_err(|e| ArgError::usage(format!("--workload-file {path}: {e}")))?;
        // Build real backing data: deterministic values for the non-index
        // arrays, index contents from the file.
        let mut arena = Arena::new(&workload.space);
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for (id, def) in workload.space.iter() {
            if workload.index.contains(id) || def.elem != 8 {
                continue;
            }
            for i in 0..def.len {
                arena.set_f64(&workload.space, id, i, next() + 0.001);
            }
        }
        arena.install_indices(&workload.space, &workload.index);
        return Ok((workload, arena, format!("file:{path}")));
    }
    match args.get("workload", "parmvr").as_str() {
        "parmvr" | "wave5" => {
            let scale = args.get_num("scale", 0.25f64)?;
            if scale <= 0.0 {
                return Err(ArgError::usage("--scale must be positive"));
            }
            let p = Parmvr::build(ParmvrParams { scale, seed });
            Ok((p.workload, p.arena, format!("parmvr (scale {scale})")))
        }
        w @ ("synth-dense" | "synth-sparse") => {
            let n = args.get_num("n", 4u64 << 20)?;
            let variant = if w.ends_with("dense") {
                Variant::Dense
            } else {
                Variant::Sparse
            };
            let s = Synth::build(n, variant, seed);
            Ok((
                s.workload,
                s.arena,
                format!("synthetic {} (n={n})", variant.label()),
            ))
        }
        other => Err(ArgError::usage(format!(
            "unknown workload '{other}' (parmvr|synth-dense|synth-sparse)"
        ))),
    }
}

fn rt_policy_from(args: &Args) -> Result<RtPolicy, ArgError> {
    match args.get("policy", "restructure").as_str() {
        "none" => Ok(RtPolicy::None),
        "prefetch" | "prefetched" => Ok(RtPolicy::Prefetch),
        "restructure" | "restructured" => Ok(RtPolicy::Restructure),
        other => Err(ArgError::usage(format!(
            "unknown policy '{other}' (none|prefetch|restructure)"
        ))),
    }
}

fn sim_policy_from(args: &Args) -> Result<HelperPolicy, ArgError> {
    match args.get("policy", "restructure+hoist").as_str() {
        "none" => Ok(HelperPolicy::None),
        "prefetch" | "prefetched" => Ok(HelperPolicy::Prefetch),
        "restructure" | "restructured" => Ok(HelperPolicy::Restructure { hoist: false }),
        "restructure+hoist" | "restructured+hoist" => Ok(HelperPolicy::Restructure { hoist: true }),
        other => Err(ArgError::usage(format!(
            "unknown policy '{other}' (none|prefetch|restructure|restructure+hoist)"
        ))),
    }
}

/// `cascade machines`
pub fn machines(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown()?;
    let mut out = String::new();
    for m in [machines::pentium_pro(), machines::r10000()] {
        out.push_str(&format!(
            "{}\n  L1 {:>4} KB {}-way {:>3}B lines, {} cycles\n  L2 {:>4} KB {}-way {:>3}B lines, {} cycles\n  memory {} cycles, transfer of control {} cycles\n",
            m.name,
            m.l1.size / 1024,
            m.l1.assoc,
            m.l1.line,
            m.l1.latency,
            m.l2.size / 1024,
            m.l2.assoc,
            m.l2.line,
            m.l2.latency,
            m.mem_latency,
            m.transfer_cost,
        ));
    }
    Ok(out)
}

fn render_summary(report: &RunReport, base: &RunReport, title: &str) -> String {
    format!(
        "{title}\n  configuration: {}\n  baseline:      {:.3e} cycles\n  cascaded:      {:.3e} cycles\n  overall speedup {:.3}\n",
        report.summary(),
        base.total_cycles(),
        report.total_cycles(),
        report.overall_speedup_vs(base),
    )
}

fn render_per_loop(report: &RunReport, base: &RunReport) -> String {
    let mut out = format!(
        "{:<48} {:>12} {:>12} {:>8} {:>9}\n",
        "loop", "orig Mcy", "casc Mcy", "speedup", "coverage"
    );
    for (l, b) in report.loops.iter().zip(&base.loops) {
        out.push_str(&format!(
            "{:<48} {:>12.2} {:>12.2} {:>8.2} {:>8.0}%\n",
            l.name,
            b.cycles / 1e6,
            l.cycles / 1e6,
            b.cycles / l.cycles,
            l.helper_coverage() * 100.0,
        ));
    }
    out.push_str(&format!(
        "{:<48} {:>12.2} {:>12.2} {:>8.2}\n",
        "OVERALL",
        base.total_cycles() / 1e6,
        report.total_cycles() / 1e6,
        report.overall_speedup_vs(base),
    ));
    out
}

/// `cascade sim`
pub fn sim(args: &Args) -> Result<String, ArgError> {
    let machine = machine_from(args)?;
    let (workload, _arena, wname) = workload_from(args)?;
    let policy = sim_policy_from(args)?;
    let procs = args.get_num("procs", 4usize)?;
    let chunk = args.get_bytes("chunk", 64 * 1024)?;
    let calls = args.get_num("calls", 2usize)?;
    let unbounded = args.flag("unbounded");
    let per_loop = args.flag("per-loop");
    let no_jump_out = args.flag("no-jump-out");
    args.reject_unknown()?;

    let base = run_sequential(&machine, &workload, calls, true);
    let report = if unbounded {
        run_unbounded(
            &machine,
            &workload,
            &UnboundedConfig {
                chunk_bytes: chunk,
                policy,
                calls,
                flush_between_calls: true,
            },
        )
    } else {
        run_cascaded(
            &machine,
            &workload,
            &CascadeConfig {
                nprocs: procs,
                chunk_bytes: chunk,
                policy,
                jump_out: !no_jump_out,
                calls,
                flush_between_calls: true,
            },
        )
    };
    let title = format!(
        "simulated cascaded execution of {wname} on {}",
        machine.name
    );
    let mut out = render_summary(&report, &base, &title);
    if per_loop {
        out.push('\n');
        out.push_str(&render_per_loop(&report, &base));
    }
    Ok(out)
}

/// `cascade rt`
pub fn rt(args: &Args) -> Result<String, ArgError> {
    let (workload, arena, wname) = workload_from(args)?;
    let threads = args.get_num(
        "threads",
        std::thread::available_parallelism().map_or(2, |n| n.get()),
    )?;
    let chunk_iters = args.get_num("chunk-iters", 4096u64)?;
    let poll = args.get_num("poll", 64u64)?;
    let policy = rt_policy_from(args)?;
    let verify = verify_policy_from(&args.get("verify", "off"))?;
    args.reject_unknown()?;

    // Sequential reference.
    let expected = {
        let mut prog = SpecProgram::new(workload.clone(), arena.clone())
            .map_err(|e| ArgError::usage(format!("workload rejected by the analyzer: {e}")))?;
        let t0 = std::time::Instant::now();
        for i in 0..prog.num_loops() {
            let k = prog.kernel(i);
            cascade_rt::run_sequential(&k);
        }
        (prog.checksum(), t0.elapsed())
    };

    let mut prog = SpecProgram::new(workload, arena)
        .map_err(|e| ArgError::usage(format!("workload rejected by the analyzer: {e}")))?;
    let cfg = RunnerConfig {
        nthreads: threads,
        iters_per_chunk: chunk_iters,
        policy,
        poll_batch: poll,
    };
    let t0 = std::time::Instant::now();
    let mut chunks = 0u64;
    let mut helped = 0u64;
    let mut iters = 0u64;
    let mut verified = 0u64;
    let mut scrubs = 0u64;
    for i in 0..prog.num_loops() {
        let k = prog.kernel(i);
        let stats = if verify.armed() {
            // The armed policies ride the governed runner: checksummed
            // handoffs, claimant verification, and the arena scrubber.
            let run_cfg = RunConfig {
                runner: cfg.clone(),
                verify,
                ..RunConfig::default()
            };
            try_run_governed(&k, &run_cfg)
                .map_err(|e| ArgError::verification(format!("loop {i}: {e}")))?
        } else {
            cascade_rt::run_cascaded(&k, &cfg)
        };
        chunks += stats.chunks;
        iters += stats.iters;
        helped += stats.threads.iter().map(|t| t.helper_iters).sum::<u64>();
        verified += stats.threads.iter().map(|t| t.verified_chunks).sum::<u64>();
        scrubs += stats.scrubs;
    }
    let elapsed = t0.elapsed();
    let ok = prog.checksum() == expected.0;

    let mut out = format!(
        "real-thread cascaded execution of {wname}\n  threads {threads}, {chunks} chunks, policy {}\n  sequential {:.2} ms, cascaded {:.2} ms, helper coverage {:.0}%\n",
        policy.label(),
        expected.1.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3,
        100.0 * helped as f64 / iters.max(1) as f64,
    );
    if verify.armed() {
        out.push_str(&format!(
            "  verification: {verified} chunks replay-verified, {scrubs} arena scrubs, no corruption\n",
        ));
    }
    if ok {
        out.push_str("  result: bitwise identical to sequential execution\n");
    } else {
        return Err(ArgError::verification(
            "cascaded result DIVERGED from sequential execution",
        ));
    }
    Ok(out)
}

/// `cascade run`: execute a workload under an explicit execution mode.
/// `--mode cascade` is the token-serialized runtime (identical to
/// `cascade rt`); `--mode plan` consumes the analyzer's per-loop
/// [`TransformPlan`] and executes each sub-loop of the fissioned
/// partition under its planned schedule — DOALL sub-loops as a static
/// range split across the worker pool, DOACROSS sub-loops as a
/// pipelined post/wait stage over per-worker committed-iteration
/// counters, sequential residues cascaded with the token runtime — in
/// the plan's topological order. The final arena state is gated on
/// bitwise equality with straight sequential execution; opaque loops
/// (no usable plan) fall back to the cascaded runtime.
pub fn run(args: &Args) -> Result<String, ArgError> {
    let mode = args.get("mode", "plan");
    match mode.as_str() {
        "cascade" => return rt(args),
        "plan" => {}
        other => {
            return Err(ArgError::usage(format!(
                "unknown mode '{other}' (cascade|plan)"
            )))
        }
    }
    let (workload, arena, wname) = workload_from(args)?;
    let threads = args.get_num(
        "threads",
        std::thread::available_parallelism().map_or(2, |n| n.get()),
    )?;
    let chunk_iters = args.get_num("chunk-iters", 4096u64)?;
    let poll = args.get_num("poll", 64u64)?;
    let policy = rt_policy_from(args)?;
    let verify = verify_policy_from(&args.get("verify", "off"))?;
    args.reject_unknown()?;

    // Sequential reference.
    let (expected, seq_elapsed) = {
        let mut prog = SpecProgram::new(workload.clone(), arena.clone())
            .map_err(|e| ArgError::usage(format!("workload rejected by the analyzer: {e}")))?;
        let t0 = std::time::Instant::now();
        for i in 0..prog.num_loops() {
            let k = prog.kernel(i);
            cascade_rt::run_sequential(&k);
        }
        (prog.checksum(), t0.elapsed())
    };

    let plans = plan_workload(&workload);
    let runner = RunnerConfig {
        nthreads: threads,
        iters_per_chunk: chunk_iters,
        policy,
        poll_batch: poll,
    };
    let mut out = format!(
        "plan-driven execution of {wname}\n  threads {threads}, {chunk_iters} iters/chunk, policy {}\n",
        policy.label()
    );
    let t0 = std::time::Instant::now();
    let mut arena = arena;
    let mut post_waits = 0u64;
    let mut stall_ns = 0u128;
    for (i, (spec, plan)) in workload.loops.iter().zip(&plans).enumerate() {
        if plan.opaque || plan.partition.is_empty() {
            // No usable plan: this loop runs under the classic cascaded
            // token runtime, unfissioned.
            let lw = Workload {
                space: workload.space.clone(),
                index: workload.index.clone(),
                loops: vec![spec.clone()],
            };
            let prog = SpecProgram::new(lw, arena)
                .map_err(|e| ArgError::usage(format!("workload rejected by the analyzer: {e}")))?;
            {
                let k = prog.kernel(0);
                let run_cfg = RunConfig {
                    runner: runner.clone(),
                    verify,
                    ..RunConfig::default()
                };
                try_run_governed(&k, &run_cfg).map_err(|e| {
                    ArgError::verification(format!("loop '{}' failed: {e}", spec.name))
                })?;
            }
            arena = prog.into_arena();
            out.push_str(&format!(
                "  loop {i} ({}): opaque — cascaded, {} iters\n",
                spec.name, spec.iters
            ));
            continue;
        }
        let specs = cascade_rt::fission_specs(spec, plan);
        let fw = Workload {
            space: workload.space.clone(),
            index: workload.index.clone(),
            loops: specs,
        };
        let prog = SpecProgram::new(fw, arena).map_err(|e| {
            ArgError::usage(format!("fissioned workload rejected by the analyzer: {e}"))
        })?;
        let stats = {
            let kernels: Vec<_> = (0..plan.partition.len()).map(|g| prog.kernel(g)).collect();
            let cfg = RunConfig {
                runner: runner.clone(),
                verify,
                ..RunConfig::default()
            };
            cascade_rt::try_run_planned(&kernels, plan, &cfg).map_err(|e| {
                ArgError::verification(format!("planned run of loop '{}' failed: {e}", spec.name))
            })?
        };
        arena = prog.into_arena();
        out.push_str(&format!(
            "  loop {i} ({}): {} sub-loops{}\n",
            spec.name,
            stats.sub_loops.len(),
            if stats.degraded { ", degraded" } else { "" }
        ));
        for s in &stats.sub_loops {
            out.push_str(&format!(
                "    sub-loop {}: {:<12} {} iters, {} chunks, {} post/waits\n",
                s.index,
                schedule_str(s.schedule),
                s.iters,
                s.chunks,
                s.post_waits
            ));
        }
        post_waits += stats.post_waits();
        stall_ns += stats.post_wait_stall_ns();
    }
    let elapsed = t0.elapsed();

    let got = {
        let mut prog = SpecProgram::new(workload, arena)
            .map_err(|e| ArgError::usage(format!("workload rejected by the analyzer: {e}")))?;
        prog.checksum()
    };
    out.push_str(&format!(
        "  sequential {:.2} ms, planned {:.2} ms, {post_waits} post/waits ({:.2} ms gate stall)\n",
        seq_elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3,
        stall_ns as f64 / 1e6,
    ));
    if got == expected {
        out.push_str("  result: bitwise identical to sequential execution\n");
        Ok(out)
    } else {
        Err(ArgError::verification(
            "planned result DIVERGED from sequential execution",
        ))
    }
}

/// The workload behind `cascade metrics` when none is named: the
/// quickstart-scale synthetic loop, small enough that the report answers
/// in well under a second on either source.
fn metrics_workload(args: &Args) -> Result<(Workload, Arena, String), ArgError> {
    if args.get_opt("workload").is_some() || args.get_opt("workload-file").is_some() {
        return workload_from(args);
    }
    let n = args.get_num("n", 1u64 << 16)?;
    let seed = args.get_num("seed", 42u64)?;
    let s = Synth::build(n, Variant::Dense, seed);
    Ok((s.workload, s.arena, format!("synthetic dense (n={n})")))
}

/// `cascade metrics`
pub fn metrics(args: &Args) -> Result<String, ArgError> {
    let source = args.get("source", "rt");
    let format = args.get("format", "text");
    let events = args.flag("events");
    let out_path = args.get_opt("out");
    let loop_idx = args.get_num("loop", 0usize)?;
    let (mut workload, arena, wname) = metrics_workload(args)?;
    if loop_idx >= workload.loops.len() {
        return Err(ArgError::usage(format!(
            "--loop {loop_idx}: workload has {} loops",
            workload.loops.len()
        )));
    }

    let (m, title) = match source.as_str() {
        "rt" | "real" => {
            let threads = args.get_num(
                "threads",
                std::thread::available_parallelism().map_or(2, |n| n.get()),
            )?;
            let chunk_iters = args.get_num("chunk-iters", 4096u64)?;
            let poll = args.get_num("poll", 64u64)?;
            let policy = rt_policy_from(args)?;
            args.reject_unknown()?;
            let prog = SpecProgram::new(workload, arena)
                .map_err(|e| ArgError::usage(format!("workload rejected by the analyzer: {e}")))?;
            let k = prog.kernel(loop_idx);
            let cfg = RunnerConfig {
                nthreads: threads,
                iters_per_chunk: chunk_iters,
                policy,
                poll_batch: poll,
            };
            let obs = if events {
                Observe::with_events()
            } else {
                Observe::default()
            };
            let stats = try_run_cascaded_observed(&k, &cfg, &Tolerance::default(), &obs)
                .map_err(|e| ArgError::verification(format!("cascaded run failed: {e}")))?;
            let title = format!(
                "real-thread cascade metrics of {wname}, loop {loop_idx} \
                 ({threads} threads, policy {})",
                policy.label()
            );
            (stats.metrics(), title)
        }
        "sim" | "simulated" => {
            let machine = machine_from(args)?;
            let policy = sim_policy_from(args)?;
            let procs = args.get_num("procs", 4usize)?;
            let chunk = args.get_bytes("chunk", 64 * 1024)?;
            args.reject_unknown()?;
            let spec = workload.loops.swap_remove(loop_idx);
            workload.loops = vec![spec];
            let report = run_cascaded(
                &machine,
                &workload,
                &CascadeConfig {
                    nprocs: procs,
                    chunk_bytes: chunk,
                    policy,
                    jump_out: true,
                    calls: 1,
                    flush_between_calls: false,
                },
            );
            let title = format!(
                "simulated cascade metrics of {wname}, loop {loop_idx} on {} \
                 ({procs} procs, policy {})",
                machine.name,
                policy.label()
            );
            (report.loops[0].timeline.metrics_with_events(events), title)
        }
        other => {
            return Err(ArgError::usage(format!(
                "unknown source '{other}' (rt|sim)"
            )))
        }
    };

    let doc = match format.as_str() {
        "json" => m.to_json(),
        "text" => format!("{title}\n{}", m.render_text()),
        other => {
            return Err(ArgError::usage(format!(
                "unknown format '{other}' (text|json)"
            )))
        }
    };
    match out_path {
        None => Ok(doc),
        Some(p) => {
            std::fs::write(&p, &doc).map_err(|e| ArgError::usage(format!("--out {p}: {e}")))?;
            Ok(format!("wrote {} bytes to {p}\n", doc.len()))
        }
    }
}

/// The synthetic chaos workloads are generated by this tool, so an
/// analyzer rejection is a bug in cascade, not in the invocation.
fn synth_rejected(e: impl std::fmt::Display) -> ArgError {
    ArgError::internal(format!("synthetic workload rejected by the analyzer: {e}"))
}

/// Map a `--tolerance` name onto the runtime's recovery ladder.
fn tolerance_from(
    name: &str,
    window: Duration,
    retry_budget: u64,
    retry_backoff: Duration,
) -> Result<Tolerance, ArgError> {
    match name {
        "salvage" => Ok(Tolerance::resilient(window)),
        "retry" => Ok(Tolerance {
            watchdog: Some(window),
            retry: Some(RetryPolicy {
                budget: retry_budget,
                backoff: retry_backoff,
                ..RetryPolicy::default()
            }),
            salvage: true,
        }),
        "fail-fast" => Ok(Tolerance {
            watchdog: Some(window),
            retry: None,
            salvage: false,
        }),
        other => Err(ArgError::usage(format!(
            "--tolerance: unknown policy '{other}' (retry|salvage|fail-fast)"
        ))),
    }
}

/// Parse `--verify off|checksum|every|sampled:K` into a [`VerifyPolicy`].
fn verify_policy_from(name: &str) -> Result<VerifyPolicy, ArgError> {
    match name {
        "off" => Ok(VerifyPolicy::Off),
        "checksum" => Ok(VerifyPolicy::Checksum),
        "every" => Ok(VerifyPolicy::EveryChunk),
        other => {
            if let Some(k) = other.strip_prefix("sampled:") {
                let k: u64 = k.parse().map_err(|_| {
                    ArgError::usage(format!("--verify: cannot parse '{k}' as a sample period"))
                })?;
                if k == 0 {
                    return Err(ArgError::usage(
                        "--verify sampled:0 never samples; use at least 1",
                    ));
                }
                return Ok(VerifyPolicy::Sampled(k));
            }
            Err(ArgError::usage(format!(
                "--verify: unknown policy '{other}' (off|checksum|every|sampled:K)"
            )))
        }
    }
}

/// Deterministic splitmix64 step — the CLI avoids external RNG crates.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// `cascade chaos`
pub fn chaos(args: &Args) -> Result<String, ArgError> {
    if args.flag("kill") {
        return chaos_kill(args);
    }
    if args.flag("corrupt") {
        return chaos_corrupt(args);
    }
    if args.get("mode", "cascade") == "plan" {
        return chaos_plan(args);
    }
    let n = args.get_num("n", 16_384u64)?;
    let seed = args.get_num("seed", 42u64)?;
    let plans = args.get_num("plans", 20u64)?;
    let max_threads = args.get_num("max-threads", 4usize)?;
    let chunk_iters = args.get_num("chunk-iters", 128u64)?;
    let watchdog_ms = args.get_num("watchdog-ms", 25u64)?;
    let stall_ms = args.get_num("stall-ms", 80u64)?;
    let tolerance = args.get("tolerance", "salvage");
    let retry_budget = args.get_num("retry-budget", 4u64)?;
    let retry_backoff_ms = args.get_num("retry-backoff-ms", 10u64)?;
    let mid_mutation = args.flag("mid-mutation");
    let cancel_storm = args.flag("cancel");
    args.reject_unknown()?;
    if plans == 0 {
        return Err(ArgError::usage("--plans must be positive"));
    }
    if max_threads == 0 {
        return Err(ArgError::usage("--max-threads must be positive"));
    }
    let window = Duration::from_millis(watchdog_ms);
    let tol = tolerance_from(
        &tolerance,
        window,
        retry_budget,
        Duration::from_millis(retry_backoff_ms),
    )?;
    let retrying = tol.retry.is_some();

    // Injected faults are ordinary panics; without this the default hook
    // would spray a backtrace per fault over the report. Restored on drop
    // (including the early-return error paths).
    struct HookGuard;
    impl Drop for HookGuard {
        fn drop(&mut self) {
            let _ = std::panic::take_hook();
        }
    }
    std::panic::set_hook(Box::new(|_| {}));
    let _hook = HookGuard;

    // One sequential reference checksum per workload variant.
    let expected = |variant: Variant| -> Result<u64, ArgError> {
        let s = Synth::build(n, variant, seed);
        let mut prog = SpecProgram::new(s.workload, s.arena).map_err(synth_rejected)?;
        let k = prog.kernel(0);
        cascade_rt::run_sequential(&k);
        Ok(prog.checksum())
    };
    let reference = [expected(Variant::Dense)?, expected(Variant::Sparse)?];

    let mut rng = seed ^ 0x000F_A170_FA17_C0DE_u64;
    let mut clean = 0u64;
    let mut recovered = 0u64;
    let mut salvaged = 0u64;
    let mut typed = 0u64;
    let mut cancelled = 0u64;
    let mut diverged = 0u64;
    let mut unexplained = 0u64;
    let mut out = format!(
        "chaos matrix: {plans} fault plans, threads 1..={max_threads}, \
         {chunk_iters} iters/chunk, watchdog {watchdog_ms} ms, tolerance {tolerance}{}{}\n",
        if mid_mutation {
            ", mid-mutation on"
        } else {
            ""
        },
        if cancel_storm {
            ", cancel storm on"
        } else {
            ""
        }
    );
    for case in 0..plans {
        let variant = if case % 2 == 0 {
            Variant::Dense
        } else {
            Variant::Sparse
        };
        let nthreads = 1 + (splitmix64(&mut rng) as usize) % max_threads;
        let policy = match splitmix64(&mut rng) % 3 {
            0 => RtPolicy::None,
            1 => RtPolicy::Prefetch,
            _ => RtPolicy::Restructure,
        };
        let s = Synth::build(n, variant, seed);
        let mut prog = SpecProgram::new(s.workload, s.arena).map_err(synth_rejected)?;
        let num_chunks = prog.workload().loops[0].iters.div_ceil(chunk_iters).max(1);
        let mut plan = FaultPlan::new(chunk_iters);
        let mut injected = Vec::new();
        for _ in 0..=(splitmix64(&mut rng) % 3) {
            let chunk = splitmix64(&mut rng) % num_chunks;
            let kind = match splitmix64(&mut rng) % if mid_mutation { 4 } else { 3 } {
                0 => FaultKind::Panic,
                1 => FaultKind::Stall(Duration::from_millis(stall_ms)),
                2 => FaultKind::Slowdown(Duration::from_millis(1 + splitmix64(&mut rng) % 3)),
                // A panic with partial writes already landed: only the
                // undo journal makes this recoverable.
                _ => FaultKind::PanicMidMutation {
                    after_iters: 1 + splitmix64(&mut rng) % (chunk_iters - 1).max(1),
                },
            };
            injected.push(format!("{kind:?}@{chunk}"));
            plan = plan.inject(chunk, kind);
        }
        let cfg = RunnerConfig {
            nthreads,
            iters_per_chunk: chunk_iters,
            policy,
            poll_batch: 8,
        };
        let faulty = FaultyKernel::new(prog.kernel(0), plan);
        let (result, gov_note) = if cancel_storm {
            // Every third plan exercises the deadline-armed governor; the
            // rest get an external canceller thread firing at a random
            // point inside (or occasionally after) the run.
            let token = CancelToken::new();
            let use_deadline = case % 3 == 2;
            let deadline =
                use_deadline.then(|| Duration::from_micros(200 + splitmix64(&mut rng) % 4_000));
            // A watchdog longer than the deadline is a config error (it
            // could never fire); clamp it so deadline plans stay valid —
            // the jumpier watchdog is welcome storm coverage.
            let mut tolerance = tol.clone();
            if let (Some(d), Some(w)) = (deadline, tolerance.watchdog) {
                tolerance.watchdog = Some(w.min(d));
            }
            let run_cfg = RunConfig {
                runner: cfg.clone(),
                tolerance,
                deadline,
                cancel: token.clone(),
                ..RunConfig::default()
            };
            let canceller = (!use_deadline).then(|| {
                let token = token.clone();
                let delay = Duration::from_micros(splitmix64(&mut rng) % 5_000);
                std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    token.cancel("chaos canceller");
                })
            });
            let result = try_run_governed(&faulty, &run_cfg);
            if let Some(h) = canceller {
                let _ = h.join();
            }
            (
                result,
                if use_deadline {
                    " +deadline"
                } else {
                    " +cancel"
                },
            )
        } else {
            (try_run_cascaded(&faulty, &cfg, &tol), "")
        };
        drop(faulty);
        let label = format!(
            "  plan {case:>3}: {} threads, {:<11} [{}]{}",
            nthreads,
            policy.label(),
            injected.join(", "),
            gov_note,
        );
        let verdict = match result {
            Ok(stats) => {
                let bitwise = prog.checksum() == reference[(case % 2) as usize];
                match (bitwise, stats.degraded) {
                    (true, true) => {
                        // With retry enabled, every fall-through to
                        // salvage must leave its reason in the audit
                        // trail; an unexplained salvage is a ladder bug.
                        let explained = stats
                            .faults
                            .iter()
                            .any(|f| matches!(f, FaultEvent::RetryAbandoned { .. }));
                        if retrying && !explained {
                            unexplained += 1;
                            format!(
                                "salvaged bitwise, but NO fall-through recorded ({} fault events)",
                                stats.faults.len()
                            )
                        } else {
                            salvaged += 1;
                            format!("salvaged bitwise ({} fault events)", stats.faults.len())
                        }
                    }
                    (true, false) if stats.retries > 0 => {
                        recovered += 1;
                        format!(
                            "recovered in-cascade ({} retried, {} quarantined)",
                            stats.retries, stats.quarantined
                        )
                    }
                    (true, false) => {
                        clean += 1;
                        "clean bitwise".to_string()
                    }
                    (false, _) => {
                        diverged += 1;
                        "SILENT DIVERGENCE".to_string()
                    }
                }
            }
            Err(
                ref e @ (RunError::Cancelled {
                    committed_iters, ..
                }
                | RunError::DeadlineExceeded {
                    committed_iters, ..
                }),
            ) => {
                // The governed run promises a bitwise-clean committed
                // prefix: finishing the loop sequentially from
                // `committed_iters` must match straight sequential.
                {
                    let k = prog.kernel(0);
                    // SAFETY: every worker drained before the error was
                    // returned; this is the documented sequential resume.
                    unsafe { k.execute(committed_iters..k.iters()) };
                }
                if prog.checksum() == reference[(case % 2) as usize] {
                    cancelled += 1;
                    format!("cancelled at iter {committed_iters}, resumed bitwise ({e})")
                } else {
                    diverged += 1;
                    format!("CANCELLED RESUME DIVERGED from iter {committed_iters}")
                }
            }
            Err(e @ (RunError::WorkerPanicked { .. } | RunError::Stalled { .. })) => {
                typed += 1;
                format!("typed error: {e}")
            }
            Err(e) => return Err(ArgError::verification(format!("chaos: plan {case}: {e}"))),
        };
        out.push_str(&format!("{label} -> {verdict}\n"));
    }
    out.push_str(&format!(
        "summary: {clean} clean, {recovered} recovered in-cascade, {salvaged} salvaged, \
         {typed} typed errors{}, {diverged} diverged\n",
        if cancel_storm {
            format!(", {cancelled} cancelled+resumed")
        } else {
            String::new()
        }
    ));
    out.push_str(&format!(
        "recovery ladder: fail-fast{}{}\n",
        if retrying {
            " -> retry -> quarantine"
        } else {
            ""
        },
        if tol.salvage { " -> salvage" } else { "" },
    ));
    if diverged > 0 {
        return Err(ArgError::verification(format!(
            "chaos: {diverged} of {plans} plans reported success with a corrupted result\n{out}"
        )));
    }
    if unexplained > 0 {
        return Err(ArgError::verification(format!(
            "chaos: {unexplained} of {plans} plans fell through to salvage without a recorded \
             RetryAbandoned reason\n{out}"
        )));
    }
    out.push_str("recovery verdict: no hangs, no silent corruption\n");
    Ok(out)
}

/// `cascade chaos --corrupt`: silent-data-corruption storm. Each plan
/// injects [`FaultKind::SilentBitFlip`]s — in-footprint flips that the
/// checksummed-handoff verifier must catch at the very next claim, plus
/// out-of-footprint flips only the arena scrubber can see — and the run
/// executes under an armed replaying [`VerifyPolicy`]. The exit gate is
/// *online detection*: every injected flip must surface before the run
/// returns (repaired bitwise, or a typed [`RunError::Corrupted`] whose
/// committed prefix resumes bitwise); a single silent divergence or
/// missed flip exits 1.
fn chaos_corrupt(args: &Args) -> Result<String, ArgError> {
    let n = args.get_num("n", 16_384u64)?;
    let seed = args.get_num("seed", 42u64)?;
    let plans = args.get_num("plans", 12u64)?;
    let max_threads = args.get_num("max-threads", 4usize)?;
    let chunk_iters = args.get_num("chunk-iters", 128u64)?;
    let watchdog_ms = args.get_num("watchdog-ms", 200u64)?;
    let tolerance = args.get("tolerance", "retry");
    let retry_budget = args.get_num("retry-budget", 4u64)?;
    let retry_backoff_ms = args.get_num("retry-backoff-ms", 10u64)?;
    let verify = verify_policy_from(&args.get("verify", "every"))?;
    let _ = args.flag("corrupt"); // consumed by the dispatcher
    args.reject_unknown()?;
    if plans == 0 {
        return Err(ArgError::usage("--plans must be positive"));
    }
    if max_threads == 0 {
        return Err(ArgError::usage("--max-threads must be positive"));
    }
    // Detection of an in-execution flip needs the replay compare; a
    // digest-only policy would re-hash the executor's own (corrupted)
    // bytes and agree with them.
    let sample_k = match verify {
        VerifyPolicy::EveryChunk => 1,
        VerifyPolicy::Sampled(k) => k,
        VerifyPolicy::Off | VerifyPolicy::Checksum => {
            return Err(ArgError::usage(
                "--corrupt needs a replaying --verify policy (every or sampled:K)",
            ))
        }
    };
    let tol = tolerance_from(
        &tolerance,
        Duration::from_millis(watchdog_ms),
        retry_budget,
        Duration::from_millis(retry_backoff_ms),
    )?;
    let recovers = tol.retry.is_some() || tol.salvage;

    let expected = |variant: Variant| -> Result<u64, ArgError> {
        let s = Synth::build(n, variant, seed);
        let mut prog = SpecProgram::new(s.workload, s.arena).map_err(synth_rejected)?;
        let k = prog.kernel(0);
        cascade_rt::run_sequential(&k);
        Ok(prog.checksum())
    };
    let reference = [expected(Variant::Dense)?, expected(Variant::Sparse)?];
    // Out-of-footprint flips only make sense on workloads that *have*
    // bytes outside their write footprints; probe with a no-op flip.
    let has_gaps = |variant: Variant| -> Result<bool, ArgError> {
        let s = Synth::build(n, variant, seed);
        let prog = SpecProgram::new(s.workload, s.arena).map_err(synth_rejected)?;
        let k = prog.kernel(0);
        // SAFETY: single-threaded; xor 0 is a no-op on the probed byte.
        Ok(unsafe { k.corrupt_byte(0..k.iters(), 0, 0, false) })
    };
    let gaps = [has_gaps(Variant::Dense)?, has_gaps(Variant::Sparse)?];

    let mut rng = seed ^ 0x00C0_44FF_7ED0_57A7_u64;
    let mut repaired = 0u64;
    let mut failed_clean = 0u64;
    let mut scrubbed = 0u64;
    let mut missed = 0u64;
    let mut diverged = 0u64;
    let mut out = format!(
        "corruption storm: {plans} flip plans, threads 1..={max_threads}, \
         {chunk_iters} iters/chunk, verify {verify:?}, tolerance {tolerance}\n"
    );
    for case in 0..plans {
        let vi = (case % 2) as usize;
        let variant = if vi == 0 {
            Variant::Dense
        } else {
            Variant::Sparse
        };
        let nthreads = 1 + (splitmix64(&mut rng) as usize) % max_threads;
        let s = Synth::build(n, variant, seed);
        let mut prog = SpecProgram::new(s.workload, s.arena).map_err(synth_rejected)?;
        let iters = prog.workload().loops[0].iters;
        let num_chunks = iters.div_ceil(chunk_iters).max(1);
        // Every fourth plan aims outside the footprints (when the
        // workload has such bytes) — the scrubber's jurisdiction.
        let outside = case % 4 == 3 && gaps[vi];
        let mut plan = FaultPlan::new(chunk_iters);
        let mut flips: Vec<u64> = Vec::new();
        for _ in 0..=(splitmix64(&mut rng) % 2) {
            // Land on replay-sampled chunks so Sampled(K) storms still
            // promise detection for every injected flip.
            let sampled = num_chunks.div_ceil(sample_k);
            let chunk = (splitmix64(&mut rng) % sampled) * sample_k;
            if flips.contains(&chunk) {
                continue;
            }
            flips.push(chunk);
            plan = plan.inject(
                chunk,
                FaultKind::SilentBitFlip {
                    // Flip after the whole chunk ran, so no later
                    // iteration of the same chunk legitimately repairs it.
                    after_iters: chunk_iters,
                    offset: splitmix64(&mut rng),
                    xor: 1 << (splitmix64(&mut rng) % 8),
                    in_footprint: !outside,
                },
            );
            if outside {
                break; // one scrubber target is enough per plan
            }
        }
        let run_cfg = RunConfig {
            runner: RunnerConfig {
                nthreads,
                iters_per_chunk: chunk_iters,
                policy: RtPolicy::None,
                poll_batch: 8,
            },
            tolerance: tol.clone(),
            verify,
            ..RunConfig::default()
        };
        let faulty = FaultyKernel::new(prog.kernel(0), plan);
        let result = try_run_governed(&faulty, &run_cfg);
        drop(faulty);
        let label = format!(
            "  plan {case:>3}: {nthreads} threads, {} flip(s) {}footprint @{:?}",
            flips.len(),
            if outside { "out-of-" } else { "in-" },
            flips,
        );
        let verdict = match result {
            Ok(stats) => {
                let detected = stats
                    .faults
                    .iter()
                    .filter(|f| matches!(f, FaultEvent::CorruptionDetected { .. }))
                    .count() as u64;
                let bitwise = prog.checksum() == reference[vi];
                if outside || detected < flips.len() as u64 {
                    // An out-of-footprint flip must fail the run (there
                    // is no journal to repair from), and an in-footprint
                    // one must be caught — success with a missed flip is
                    // exactly the silent corruption this gate exists for.
                    missed += 1;
                    format!("MISSED FLIP(S): {detected}/{} detected", flips.len())
                } else if !bitwise {
                    diverged += 1;
                    "SILENT DIVERGENCE after repair".to_string()
                } else {
                    repaired += 1;
                    format!(
                        "detected {detected}/{} online, repaired bitwise ({} blamed)",
                        flips.len(),
                        stats
                            .faults
                            .iter()
                            .filter(|f| matches!(f, FaultEvent::WorkerBlamed { .. }))
                            .count()
                    )
                }
            }
            Err(RunError::Corrupted {
                thread,
                chunk,
                committed_iters,
            }) => {
                if outside {
                    // Scrubber verdict: unassignable blame, fully
                    // committed prefix — the drift is outside every chunk.
                    if thread.is_none() && chunk.is_none() {
                        scrubbed += 1;
                        format!("scrubber caught out-of-footprint drift ({committed_iters} clean)")
                    } else {
                        missed += 1;
                        format!("out-of-footprint flip misattributed to {thread:?}/{chunk:?}")
                    }
                } else if recovers {
                    // A repairing tolerance should not have failed.
                    missed += 1;
                    format!("failed despite a recovery path (chunk {chunk:?})")
                } else {
                    // Fail-fast: the typed error's prefix must resume
                    // bitwise.
                    {
                        let k = prog.kernel(0);
                        // SAFETY: the run drained before returning; this
                        // is the documented sequential resume.
                        unsafe { k.execute(committed_iters..k.iters()) };
                    }
                    if prog.checksum() == reference[vi] {
                        failed_clean += 1;
                        format!(
                            "detected online, failed fast at chunk {chunk:?} \
                             (blamed {thread:?}), resumed bitwise"
                        )
                    } else {
                        diverged += 1;
                        format!("CORRUPT PREFIX: resume from {committed_iters} diverged")
                    }
                }
            }
            Err(e) => return Err(ArgError::verification(format!("corrupt plan {case}: {e}"))),
        };
        out.push_str(&format!("{label} -> {verdict}\n"));
    }
    out.push_str(&format!(
        "summary: {repaired} repaired bitwise, {failed_clean} failed fast with clean resume, \
         {scrubbed} scrubber catches, {missed} missed, {diverged} diverged\n"
    ));
    if missed > 0 || diverged > 0 {
        return Err(ArgError::verification(format!(
            "chaos --corrupt: {missed} missed flips / {diverged} divergences — \
             silent corruption escaped online verification\n{out}"
        )));
    }
    out.push_str("corruption verdict: every flip detected online, zero silent divergence\n");
    Ok(out)
}

/// One randomized planned-chaos workload: a single loop whose
/// transformation plan exercises the named schedule mix. Shapes rotate
/// per case so every chaos run covers DOALL fan-out, a DOACROSS
/// post/wait pipeline, and a sequential residue. All writers are
/// stride-1, so every sub-loop is range-exact journalable and
/// mid-mutation panics must be recoverable.
fn planned_chaos_workload(n: u64, shape: u64, rng: &mut u64) -> (Workload, Arena, &'static str) {
    let mut space = AddressSpace::new();
    let a = space.alloc("a", 8, n + 2);
    let x = space.alloc("x", 8, n);
    let y = space.alloc("y", 8, n);
    let sref = |name: &'static str, array, base, mode| StreamRef {
        name,
        array,
        pattern: Pattern::Affine { base, stride: 1 },
        mode,
        bytes: 8,
        hoistable: false,
    };
    let (refs, desc) = match shape % 3 {
        // Lag-1 recurrence + two independent consumers:
        // [Sequential, Parallel, Parallel].
        0 => (
            vec![
                sref("a(i)", a, 0, Mode::Read),
                sref("a(i+1)", a, 1, Mode::Write),
                sref("x(i)", x, 0, Mode::Write),
                sref("y(i)", y, 0, Mode::Modify),
            ],
            "seq+doall",
        ),
        // Lag-2 recurrence + an independent consumer:
        // [DoAcross(2), Parallel].
        1 => (
            vec![
                sref("a(i)", a, 0, Mode::Read),
                sref("a(i+2)", a, 2, Mode::Write),
                sref("x(i)", x, 0, Mode::Write),
            ],
            "doacross+doall",
        ),
        // Two independent writers over a shared read set:
        // [Parallel, Parallel].
        _ => (
            vec![
                sref("a(i)", a, 0, Mode::Read),
                sref("x(i)", x, 0, Mode::Write),
                sref("y(i)", y, 0, Mode::Modify),
            ],
            "doall x2",
        ),
    };
    let spec = LoopSpec {
        name: "planned-chaos".into(),
        iters: n,
        refs,
        compute: 4.0,
        hoistable_compute: 0.0,
        hoist_result_bytes: 0,
    };
    let w = Workload {
        space,
        index: IndexStore::new(),
        loops: vec![spec],
    };
    let mut arena = Arena::new(&w.space);
    let salt = splitmix64(rng);
    for i in 0..n + 2 {
        arena.set_f64(&w.space, a, i, ((i ^ salt) % 23) as f64 * 0.1875 + 0.25);
    }
    for i in 0..n {
        arena.set_f64(&w.space, y, i, ((i.wrapping_add(salt)) % 7) as f64 - 2.5);
    }
    (w, arena, desc)
}

/// `cascade chaos --mode plan`: the fault-injection matrix pointed at
/// the plan-driven executor. Each case fissions a randomized
/// multi-writer loop under its transformation plan, injects
/// panics/stalls/slowdowns (and, with `--mid-mutation`, torn panics)
/// into random sub-loop chunks via per-sub-loop fault plans, and
/// demands the planned run finish or salvage bitwise, report a typed
/// error, or — under `--cancel` — drain to an exactly-resumable
/// committed prefix of the fissioned sequence. Exits 1 on any silent
/// corruption.
fn chaos_plan(args: &Args) -> Result<String, ArgError> {
    let n = args.get_num("n", 4096u64)?;
    let seed = args.get_num("seed", 42u64)?;
    let plans = args.get_num("plans", 12u64)?;
    let max_threads = args.get_num("max-threads", 4usize)?;
    let chunk_iters = args.get_num("chunk-iters", 128u64)?;
    let watchdog_ms = args.get_num("watchdog-ms", 25u64)?;
    let stall_ms = args.get_num("stall-ms", 80u64)?;
    let tolerance = args.get("tolerance", "salvage");
    let retry_budget = args.get_num("retry-budget", 4u64)?;
    let retry_backoff_ms = args.get_num("retry-backoff-ms", 10u64)?;
    let mid_mutation = args.flag("mid-mutation");
    let cancel_storm = args.flag("cancel");
    args.reject_unknown()?;
    if plans == 0 {
        return Err(ArgError::usage("--plans must be positive"));
    }
    if max_threads == 0 {
        return Err(ArgError::usage("--max-threads must be positive"));
    }
    let window = Duration::from_millis(watchdog_ms);
    let tol = tolerance_from(
        &tolerance,
        window,
        retry_budget,
        Duration::from_millis(retry_backoff_ms),
    )?;

    // Injected faults are ordinary panics; suppress the default hook's
    // per-fault backtraces (restored on drop, including error paths).
    struct HookGuard;
    impl Drop for HookGuard {
        fn drop(&mut self) {
            let _ = std::panic::take_hook();
        }
    }
    std::panic::set_hook(Box::new(|_| {}));
    let _hook = HookGuard;

    let mut rng = seed ^ 0x0000_F1A2_0000_C0DE_u64;
    let mut clean = 0u64;
    let mut salvaged = 0u64;
    let mut typed = 0u64;
    let mut cancelled = 0u64;
    let mut diverged = 0u64;
    let mut out = format!(
        "planned chaos matrix: {plans} fault plans, threads 1..={max_threads}, \
         {chunk_iters} iters/chunk, watchdog {watchdog_ms} ms, tolerance {tolerance}{}{}\n",
        if mid_mutation {
            ", mid-mutation on"
        } else {
            ""
        },
        if cancel_storm {
            ", cancel storm on"
        } else {
            ""
        }
    );
    for case in 0..plans {
        let (w, arena, desc) = planned_chaos_workload(n, case, &mut rng);
        let nthreads = 1 + (splitmix64(&mut rng) as usize) % max_threads;

        // Straight sequential reference over this case's arena.
        let expected = {
            let mut prog = SpecProgram::new(w.clone(), arena.clone()).map_err(synth_rejected)?;
            let k = prog.kernel(0);
            cascade_rt::run_sequential(&k);
            prog.checksum()
        };

        let plan = &plan_workload(&w)[0];
        let groups = plan.partition.len() as u64;
        let specs = cascade_rt::fission_specs(&w.loops[0], plan);
        let fw = Workload {
            space: w.space.clone(),
            index: w.index.clone(),
            loops: specs,
        };
        let mut prog = SpecProgram::new(fw, arena).map_err(synth_rejected)?;
        let num_chunks = n.div_ceil(chunk_iters).max(1);

        // One independent fault plan per sub-loop.
        let mut fplans: Vec<FaultPlan> = (0..groups).map(|_| FaultPlan::new(chunk_iters)).collect();
        let mut injected = Vec::new();
        for _ in 0..=(splitmix64(&mut rng) % 2) {
            let g = (splitmix64(&mut rng) % groups) as usize;
            let chunk = splitmix64(&mut rng) % num_chunks;
            let kind = match splitmix64(&mut rng) % if mid_mutation { 4 } else { 3 } {
                0 => FaultKind::Panic,
                1 => FaultKind::Stall(Duration::from_millis(stall_ms)),
                2 => FaultKind::Slowdown(Duration::from_millis(1 + splitmix64(&mut rng) % 3)),
                _ => FaultKind::PanicMidMutation {
                    after_iters: 1 + splitmix64(&mut rng) % (chunk_iters - 1).max(1),
                },
            };
            injected.push(format!("{kind:?}@{g}/{chunk}"));
            fplans[g] = std::mem::take(&mut fplans[g]).inject(chunk, kind);
        }

        let runner = RunnerConfig {
            nthreads,
            iters_per_chunk: chunk_iters,
            policy: RtPolicy::Restructure,
            poll_batch: 8,
        };
        let faulty: Vec<FaultyKernel<_>> = fplans
            .into_iter()
            .enumerate()
            .map(|(g, fp)| FaultyKernel::new(prog.kernel(g), fp))
            .collect();
        let (result, gov_note) = if cancel_storm {
            // Every third case arms the deadline governor; the rest get
            // an external canceller thread firing at a random point.
            let token = CancelToken::new();
            let use_deadline = case % 3 == 2;
            let deadline =
                use_deadline.then(|| Duration::from_micros(200 + splitmix64(&mut rng) % 4_000));
            let mut tolerance = tol.clone();
            if let (Some(d), Some(wd)) = (deadline, tolerance.watchdog) {
                tolerance.watchdog = Some(wd.min(d));
            }
            let cfg = RunConfig {
                runner,
                tolerance,
                deadline,
                cancel: token.clone(),
                ..RunConfig::default()
            };
            let canceller = (!use_deadline).then(|| {
                let token = token.clone();
                let delay = Duration::from_micros(splitmix64(&mut rng) % 5_000);
                std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    token.cancel("planned chaos canceller");
                })
            });
            let result = cascade_rt::try_run_planned(&faulty, plan, &cfg);
            if let Some(h) = canceller {
                let _ = h.join();
            }
            (
                result,
                if use_deadline {
                    " +deadline"
                } else {
                    " +cancel"
                },
            )
        } else {
            let cfg = RunConfig {
                runner,
                tolerance: tol.clone(),
                ..RunConfig::default()
            };
            (cascade_rt::try_run_planned(&faulty, plan, &cfg), "")
        };
        drop(faulty);
        let label = format!(
            "  plan {case:>3}: {desc:<14} {nthreads} threads [{}]{gov_note}",
            injected.join(", "),
        );
        let verdict = match result {
            Ok(stats) => {
                let bitwise = prog.checksum() == expected;
                match (bitwise, stats.degraded) {
                    (true, true) => {
                        salvaged += 1;
                        format!("salvaged bitwise ({} fault events)", stats.faults.len())
                    }
                    (true, false) => {
                        clean += 1;
                        "clean bitwise".to_string()
                    }
                    (false, _) => {
                        diverged += 1;
                        "SILENT DIVERGENCE".to_string()
                    }
                }
            }
            Err(
                ref e @ (RunError::Cancelled {
                    committed_iters, ..
                }
                | RunError::DeadlineExceeded {
                    committed_iters, ..
                }),
            ) => {
                // The planned run promises a bitwise-clean prefix of
                // the *fissioned sequence*: finish the remaining
                // sub-loops sequentially from the global committed
                // count, in plan order, and gate on straight
                // sequential.
                let mut rem = committed_iters;
                for g in 0..groups as usize {
                    let k = prog.kernel(g);
                    let done = rem.min(k.iters());
                    rem -= done;
                    if done < k.iters() {
                        // SAFETY: every worker drained before the
                        // error returned; documented sequential resume.
                        unsafe { k.execute(done..k.iters()) };
                    }
                }
                if prog.checksum() == expected {
                    cancelled += 1;
                    format!("cancelled at iter {committed_iters}, resumed bitwise ({e})")
                } else {
                    diverged += 1;
                    format!("CANCELLED RESUME DIVERGED from iter {committed_iters}")
                }
            }
            Err(e @ (RunError::WorkerPanicked { .. } | RunError::Stalled { .. })) => {
                typed += 1;
                format!("typed error: {e}")
            }
            Err(e) => {
                return Err(ArgError::verification(format!(
                    "planned chaos: plan {case}: {e}"
                )))
            }
        };
        out.push_str(&format!("{label} -> {verdict}\n"));
    }
    out.push_str(&format!(
        "summary: {clean} clean, {salvaged} salvaged, {typed} typed errors{}, {diverged} diverged\n",
        if cancel_storm {
            format!(", {cancelled} cancelled+resumed")
        } else {
            String::new()
        }
    ));
    if diverged > 0 {
        return Err(ArgError::verification(format!(
            "planned chaos: {diverged} of {plans} plans reported success with a corrupted \
             result\n{out}"
        )));
    }
    out.push_str("recovery verdict: no hangs, no silent corruption\n");
    Ok(out)
}

/// Wraps a kernel so every chunk execution takes a bounded minimum wall
/// time. `cascade chaos --kill` needs SIGKILL to land *mid-run* with
/// useful probability, and the synthetic loops are otherwise too fast
/// for the kill window to sample interesting commit boundaries.
struct ThrottledKernel<K> {
    inner: K,
    delay: Duration,
}

impl<K: RealKernel> RealKernel for ThrottledKernel<K> {
    fn iters(&self) -> u64 {
        self.inner.iters()
    }

    unsafe fn execute(&self, range: std::ops::Range<u64>) {
        std::thread::sleep(self.delay);
        self.inner.execute(range)
    }

    fn prefetch_iter(&self, i: u64) {
        self.inner.prefetch_iter(i)
    }

    fn prefetch_bytes_per_iter(&self) -> u64 {
        self.inner.prefetch_bytes_per_iter()
    }

    fn pack_iter(&self, i: u64, buf: &mut Vec<u8>) -> bool {
        self.inner.pack_iter(i, buf)
    }

    unsafe fn execute_packed(&self, range: std::ops::Range<u64>, buf: &[u8]) {
        std::thread::sleep(self.delay);
        self.inner.execute_packed(range, buf)
    }

    fn helper_horizon(&self) -> Option<u64> {
        self.inner.helper_horizon()
    }

    fn panics_before_mutation(&self) -> bool {
        self.inner.panics_before_mutation()
    }

    unsafe fn journal_capture(&self, range: std::ops::Range<u64>, buf: &mut Vec<u8>) -> bool {
        self.inner.journal_capture(range, buf)
    }

    unsafe fn journal_rollback(&self, range: std::ops::Range<u64>, buf: &[u8]) {
        self.inner.journal_rollback(range, buf)
    }
}

/// Hidden subcommand: the child half of `cascade chaos --kill`. Runs one
/// governed synthetic loop with checkpointing enabled and a throttled
/// kernel, persisting checkpoints into `--dir` until the parent SIGKILLs
/// the process (or the run finishes first). Not part of the public
/// surface — the parent invokes it through its own executable.
pub fn ckpt_run(args: &Args) -> Result<String, ArgError> {
    let dir = args
        .get_opt("dir")
        .ok_or_else(|| ArgError::usage("ckpt-run: --dir is required"))?;
    let n = args.get_num("n", 4096u64)?;
    let seed = args.get_num("seed", 42u64)?;
    let threads = args.get_num("threads", 2usize)?;
    let chunk_iters = args.get_num("chunk-iters", 64u64)?;
    let every = args.get_num("every", 1u64)?;
    let throttle_us = args.get_num("throttle-us", 0u64)?;
    let watchdog_ms = args.get_num("watchdog-ms", 25u64)?;
    let retry_budget = args.get_num("retry-budget", 4u64)?;
    let retry_backoff_ms = args.get_num("retry-backoff-ms", 10u64)?;
    let tol = tolerance_from(
        &args.get("tolerance", "salvage"),
        Duration::from_millis(watchdog_ms),
        retry_budget,
        Duration::from_millis(retry_backoff_ms),
    )?;
    let variant = match args.get("variant", "dense").as_str() {
        "dense" => Variant::Dense,
        "sparse" => Variant::Sparse,
        other => {
            return Err(ArgError::usage(format!(
                "ckpt-run: unknown variant '{other}' (dense|sparse)"
            )))
        }
    };
    args.reject_unknown()?;

    let s = Synth::build(n, variant, seed);
    let text = to_text(&s.workload);
    let base = s.arena.bytes().to_vec();
    let iters = s.workload.loops[0].iters;
    let prog = SpecProgram::new(s.workload, s.arena).map_err(synth_rejected)?;
    let writer = CkptWriter::create(
        Path::new(&dir),
        &text,
        CkptMeta {
            loop_index: 0,
            iters,
            iters_per_chunk: chunk_iters,
        },
        &base,
    )
    .map_err(|e| ArgError::usage(format!("ckpt-run: --dir {dir}: {e}")))?;
    let kernel = ThrottledKernel {
        inner: prog.kernel(0),
        delay: Duration::from_micros(throttle_us),
    };
    let cfg = RunConfig {
        runner: RunnerConfig {
            nthreads: threads,
            iters_per_chunk: chunk_iters,
            policy: RtPolicy::Restructure,
            poll_batch: 8,
        },
        tolerance: tol,
        ckpt: CkptPolicy::EveryChunks(every),
        ckpt_sink: Some(CkptSink::new(writer)),
        ..RunConfig::default()
    };
    let stats = try_run_governed(&kernel, &cfg)
        .map_err(|e| ArgError::verification(format!("ckpt-run: {e}")))?;
    Ok(format!("ckpt-run complete: {} chunks\n", stats.chunks))
}

/// `cascade chaos --kill`: kill-restart recovery trials. Each trial forks
/// this executable as a checkpointing child run, SIGKILLs it at a
/// randomized point, resumes from whatever checkpoint survived, finishes
/// the loop sequentially, and gates on bitwise equality with an
/// uninterrupted sequential run.
fn chaos_kill(args: &Args) -> Result<String, ArgError> {
    let n = args.get_num("n", 4096u64)?;
    let seed = args.get_num("seed", 42u64)?;
    let plans = args.get_num("plans", 6u64)?;
    let max_threads = args.get_num("max-threads", 3usize)?;
    let chunk_iters = args.get_num("chunk-iters", 64u64)?;
    let tolerance = args.get("tolerance", "salvage");
    let watchdog_ms = args.get_num("watchdog-ms", 25u64)?;
    let retry_budget = args.get_num("retry-budget", 4u64)?;
    let retry_backoff_ms = args.get_num("retry-backoff-ms", 10u64)?;
    let throttle_us = args.get_num("throttle-us", 300u64)?;
    let kill_dir = args.get_opt("kill-dir");
    let exe = args.get_opt("exe").map(PathBuf::from);
    let _ = args.flag("kill");
    args.reject_unknown()?;
    if plans == 0 {
        return Err(ArgError::usage("--plans must be positive"));
    }
    if max_threads == 0 {
        return Err(ArgError::usage("--max-threads must be positive"));
    }
    if chunk_iters == 0 || chunk_iters >= n {
        return Err(ArgError::usage("--chunk-iters must be in 1..n"));
    }
    // Validate the name up front; the child re-parses its own copy.
    tolerance_from(
        &tolerance,
        Duration::from_millis(watchdog_ms),
        retry_budget,
        Duration::from_millis(retry_backoff_ms),
    )?;
    let exe = match exe {
        Some(p) => p,
        None => std::env::current_exe()
            .map_err(|e| ArgError::internal(format!("chaos --kill: current_exe: {e}")))?,
    };
    let base_dir = match &kill_dir {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("cascade-kill-{}", std::process::id())),
    };

    let mut rng = seed ^ 0x0000_51C4_11ED_0009_u64; // 9 = SIGKILL
    let mut out = format!(
        "kill-restart storm: {plans} trials, threads 1..={max_threads}, \
         {chunk_iters} iters/chunk, tolerance {tolerance}, checkpoints under {}\n",
        base_dir.display()
    );
    let mut resumed = 0u64;
    let mut cold = 0u64;
    let mut diverged = 0u64;
    for t in 0..plans {
        let variant = if t % 2 == 0 {
            Variant::Dense
        } else {
            Variant::Sparse
        };
        let child_seed = seed.wrapping_add(t);
        let nthreads = 1 + (splitmix64(&mut rng) as usize) % max_threads;
        let every = 1 + splitmix64(&mut rng) % 2;
        let dir = base_dir.join(format!("trial-{t:02}"));

        // Uninterrupted sequential reference: full arena bytes, not just
        // a checksum — the acceptance bar is bitwise equality.
        let want = {
            let s = Synth::build(n, variant, child_seed);
            let mut prog = SpecProgram::new(s.workload, s.arena).map_err(synth_rejected)?;
            {
                let k = prog.kernel(0);
                cascade_rt::run_sequential(&k);
            }
            prog.arena_mut().bytes().to_vec()
        };

        let mut child = std::process::Command::new(&exe)
            .args([
                "ckpt-run",
                "--dir",
                &dir.display().to_string(),
                "--n",
                &n.to_string(),
                "--seed",
                &child_seed.to_string(),
                "--variant",
                if t % 2 == 0 { "dense" } else { "sparse" },
                "--threads",
                &nthreads.to_string(),
                "--chunk-iters",
                &chunk_iters.to_string(),
                "--every",
                &every.to_string(),
                "--throttle-us",
                &throttle_us.to_string(),
                "--tolerance",
                &tolerance,
                "--watchdog-ms",
                &watchdog_ms.to_string(),
                "--retry-budget",
                &retry_budget.to_string(),
                "--retry-backoff-ms",
                &retry_backoff_ms.to_string(),
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| ArgError::internal(format!("chaos --kill: spawn {exe:?}: {e}")))?;
        // Kill anywhere from before the manifest exists to after the run
        // finished: every point must recover.
        let chunks_total = n.div_ceil(chunk_iters);
        let horizon_us = 2_000 + chunks_total * throttle_us * 2;
        std::thread::sleep(Duration::from_micros(splitmix64(&mut rng) % horizon_us));
        let _ = child.kill();
        let _ = child.wait();

        let (got, note) = if dir.join("MANIFEST").exists() {
            // A published manifest must load, restore, and finish — any
            // failure past this point is a durability bug, not bad luck.
            let ck = ckpt::load(&dir).map_err(|e| {
                ArgError::verification(format!(
                    "chaos --kill: trial {t}: published checkpoint rejected: {e} \
                     (dir kept at {})",
                    dir.display()
                ))
            })?;
            let committed = ck.committed_iters();
            let (mut prog, at) = ck.into_program().map_err(|e| {
                ArgError::verification(format!(
                    "chaos --kill: trial {t}: restore failed: {e} (dir kept at {})",
                    dir.display()
                ))
            })?;
            {
                let k = prog.kernel(0);
                // SAFETY: the child is dead; this is the documented
                // single-threaded sequential resume.
                unsafe { k.execute(at..k.iters()) };
            }
            resumed += 1;
            (
                prog.arena_mut().bytes().to_vec(),
                format!("resumed from iter {committed}"),
            )
        } else {
            // Killed before the writer published anything: the contract
            // degrades to a cold restart, which must still match.
            let s = Synth::build(n, variant, child_seed);
            let mut prog = SpecProgram::new(s.workload, s.arena).map_err(synth_rejected)?;
            {
                let k = prog.kernel(0);
                cascade_rt::run_sequential(&k);
            }
            cold += 1;
            (
                prog.arena_mut().bytes().to_vec(),
                "no checkpoint published; restarted from scratch".to_string(),
            )
        };
        let ok = got == want;
        if !ok {
            diverged += 1;
        }
        out.push_str(&format!(
            "  trial {t:>2}: {nthreads} threads, every {every} chunks, {note} -> {}\n",
            if ok { "bitwise identical" } else { "DIVERGED" }
        ));
        if ok {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    out.push_str(&format!(
        "summary: {resumed} resumed from checkpoint, {cold} cold restarts, {diverged} diverged\n"
    ));
    if diverged > 0 {
        return Err(ArgError::verification(format!(
            "chaos --kill: {diverged} of {plans} trials diverged after kill-restart \
             (checkpoint dirs kept under {})\n{out}",
            base_dir.display()
        )));
    }
    if kill_dir.is_none() {
        let _ = std::fs::remove_dir_all(&base_dir);
    }
    out.push_str("kill-restart verdict: every sampled SIGKILL point recovered bitwise\n");
    Ok(out)
}

/// `cascade resume`
pub fn resume(args: &Args) -> Result<String, ArgError> {
    let dir = args
        .get_opt("dir")
        .ok_or_else(|| ArgError::usage("resume: --dir is required"))?;
    let verify = args.flag("verify");
    args.reject_unknown()?;

    let ck =
        ckpt::load(Path::new(&dir)).map_err(|e| ArgError::usage(format!("--dir {dir}: {e}")))?;
    let meta = ck.meta();
    let committed = ck.committed_iters();
    let chunks = ck.committed_chunks();
    let deltas = ck.num_deltas();
    let verify_src = verify.then(|| (ck.workload_text().to_string(), ck.base_bytes().to_vec()));
    let (mut prog, at) = ck
        .into_program()
        .map_err(|e| ArgError::usage(format!("--dir {dir}: {e}")))?;
    let total = {
        let k = prog.kernel(meta.loop_index);
        // SAFETY: single-threaded — the documented sequential resume.
        unsafe { k.execute(at..k.iters()) };
        k.iters()
    };
    let sum = prog.checksum();
    let mut out = format!(
        "resumed {dir}: loop {}, {committed}/{total} iterations checkpointed \
         ({chunks} chunks, {deltas} deltas)\n\
         finished sequentially from iteration {at}; checksum {sum:016x}\n",
        meta.loop_index
    );
    if let Some((text, base)) = verify_src {
        // Replay the whole loop from the pristine base snapshot: the
        // checkpointed prefix plus the sequential tail must be
        // indistinguishable from never having crashed.
        let w =
            from_text(&text).map_err(|e| ArgError::usage(format!("--dir {dir}: workload: {e}")))?;
        let fresh_arena = Arena::try_from_bytes(&w.space, base)
            .map_err(|e| ArgError::usage(format!("--dir {dir}: {e}")))?;
        let mut fresh = SpecProgram::new(w, fresh_arena).map_err(|e| {
            ArgError::usage(format!(
                "--dir {dir}: workload rejected by the analyzer: {e}"
            ))
        })?;
        {
            let k = fresh.kernel(meta.loop_index);
            cascade_rt::run_sequential(&k);
        }
        if fresh.arena_mut().bytes() == prog.arena_mut().bytes() {
            out.push_str("verify: bitwise identical to an uninterrupted sequential run\n");
        } else {
            return Err(ArgError::verification(format!(
                "{out}verify: resumed state DIVERGED from an uninterrupted sequential run"
            )));
        }
    }
    Ok(out)
}

/// `cascade dump`
pub fn dump(args: &Args) -> Result<String, ArgError> {
    let (workload, _arena, _name) = workload_from(args)?;
    let out_path = args.get_opt("out");
    args.reject_unknown()?;
    let text = to_text(&workload);
    match out_path {
        None => Ok(text),
        Some(p) => {
            std::fs::write(&p, &text).map_err(|e| ArgError::usage(format!("--out {p}: {e}")))?;
            Ok(format!("wrote {} bytes to {p}\n", text.len()))
        }
    }
}

/// `cascade schedule`
pub fn schedule(args: &Args) -> Result<String, ArgError> {
    let machine = machine_from(args)?;
    let (mut workload, _arena, wname) = workload_from(args)?;
    let policy = sim_policy_from(args)?;
    let procs = args.get_num("procs", 3usize)?;
    let loop_idx = args.get_num("loop", 0usize)?;
    let width = args.get_num("width", 72usize)?;
    let chunks_wanted = args.get_num("chunks", 12u64)?;
    args.reject_unknown()?;
    if loop_idx >= workload.loops.len() {
        return Err(ArgError::usage(format!(
            "--loop {loop_idx}: workload has {} loops",
            workload.loops.len()
        )));
    }
    let spec = workload.loops.swap_remove(loop_idx);
    workload.loops = vec![spec];
    let chunk_bytes = (workload.loops[0].footprint() / chunks_wanted.max(1)).max(4096);
    let r = run_cascaded(
        &machine,
        &workload,
        &CascadeConfig {
            nprocs: procs,
            chunk_bytes,
            policy,
            jump_out: true,
            calls: 1,
            flush_between_calls: true,
        },
    );
    let l = &r.loops[0];
    Ok(format!(
        "cascade schedule of {wname} / {} on {} ({} procs, {} chunks)\n\n{}",
        l.name,
        machine.name,
        procs,
        l.chunks,
        l.timeline.render(width)
    ))
}

/// `cascade analyze`
pub fn analyze(args: &Args) -> Result<String, ArgError> {
    if args.flag("all") {
        return analyze_all(args);
    }
    let (workload, _arena, wname) = workload_from(args)?;
    let loop_idx = args.get_num("loop", 0usize)?;
    let chunk = args.get_bytes("chunk", 64 * 1024)?;
    let line = args.get_bytes("line", 32)?;
    args.reject_unknown()?;
    let spec = workload.loops.get(loop_idx).ok_or_else(|| {
        ArgError::usage(format!(
            "--loop {loop_idx}: workload has {} loops",
            workload.loops.len()
        ))
    })?;
    let res = Resolver::new(&workload.space, &workload.index);
    let plan = ChunkPlan::new(spec, chunk, line);
    let range = plan.range(0);

    let mut original = Vec::new();
    for i in range.clone() {
        for r in &spec.refs {
            if let Some(ix) = res.index_access(r, i) {
                original.push(TraceRef {
                    addr: ix.addr,
                    bytes: ix.bytes,
                });
            }
            let d = res.data_access(r, i);
            original.push(TraceRef {
                addr: d.addr,
                bytes: d.bytes,
            });
            if matches!(r.mode, Mode::Modify) {
                original.push(TraceRef {
                    addr: d.addr,
                    bytes: d.bytes,
                });
            }
        }
    }
    let pbpi = spec.packed_bytes_per_iter(true);
    let base = workload.space.extent();
    let mut restructured = Vec::new();
    for i in range.clone() {
        if pbpi > 0 {
            restructured.push(TraceRef {
                addr: base + (i - range.start) * pbpi,
                bytes: pbpi as u32,
            });
        }
        for r in &spec.refs {
            if r.mode.writes() {
                let d = res.data_access(r, i);
                restructured.push(TraceRef {
                    addr: d.addr,
                    bytes: d.bytes,
                });
            }
        }
    }

    let mut out = format!(
        "reference-stream analysis of {wname}, loop {loop_idx} ({}), first chunk of {} iterations
",
        spec.name,
        range.end - range.start
    );
    for (label, refs) in [("original", &original), ("restructured", &restructured)] {
        let p = reuse_distances(refs, line);
        out.push_str(&format!(
            "  {label:<13} {:>7} accesses, {:>6} lines, mean reuse distance {}, compulsory {}
",
            refs.len(),
            p.working_set_lines,
            p.mean_distance().map_or("-".into(), |d| format!("{d:.1}")),
            p.compulsory(),
        ));
    }
    let strides = stride_histogram(&original);
    out.push_str("  dominant strides (original): ");
    let top: Vec<String> = strides
        .iter()
        .take(3)
        .map(|(s, c)| format!("{s:+} x{c}"))
        .collect();
    out.push_str(&top.join(", "));
    out.push('\n');
    Ok(out)
}

/// `cascade analyze --all`: the static helper-safety report — per-operand
/// lattice verdicts for the kernel suite plus wave5 (or one dumped
/// workload), in text or JSON. Exits 1 (verification failure) when any
/// target carries an `Unsafe` verdict or error diagnostic.
fn analyze_all(args: &Args) -> Result<String, ArgError> {
    let n = args.get_num("n", 4096u64)?;
    let seed = args.get_num("seed", 42u64)?;
    let scale = args.get_num("scale", 0.01f64)?;
    let format = args.get("format", "text");
    let file = args.get_opt("workload-file");
    args.reject_unknown()?;

    let mut targets: Vec<(String, WorkloadReport)> = Vec::new();
    match file {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| ArgError::usage(format!("--workload-file {path}: {e}")))?;
            let w = from_text(&text)
                .map_err(|e| ArgError::usage(format!("--workload-file {path}: {e}")))?;
            targets.push((path, analyze_workload(&w)));
        }
        None => {
            for k in cascade_kernels::suite(n, seed) {
                targets.push((k.name.to_string(), k.report().clone()));
            }
            let p = Parmvr::build(ParmvrParams { scale, seed });
            targets.push(("wave5-parmvr".to_string(), analyze_workload(&p.workload)));
        }
    }

    let out = match format.as_str() {
        "text" => render_analysis_text(&targets),
        "json" => render_analysis_json(&targets, n, seed, scale),
        other => {
            return Err(ArgError::usage(format!(
                "unknown format '{other}' (text|json)"
            )))
        }
    };
    let rejected: Vec<&str> = targets
        .iter()
        .filter(|(_, r)| !r.rt_ok())
        .map(|(name, _)| name.as_str())
        .collect();
    if rejected.is_empty() {
        Ok(out)
    } else {
        Err(ArgError::verification(format!(
            "{out}\nunsafe verdicts or error diagnostics in: {}",
            rejected.join(", ")
        )))
    }
}

fn mode_str(m: Mode) -> &'static str {
    match m {
        Mode::Read => "read",
        Mode::Write => "write",
        Mode::Modify => "modify",
    }
}

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Info => "info",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

fn render_analysis_text(targets: &[(String, WorkloadReport)]) -> String {
    let mut out = String::from("helper-safety analysis (cascade-analyze)\n");
    let mut admitted = 0usize;
    for (name, rep) in targets {
        let status = if rep.rt_ok() {
            admitted += 1;
            "admitted"
        } else {
            "REJECTED"
        };
        out.push_str(&format!("\n== {name}: {status}\n"));
        for d in &rep.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        for l in &rep.loops {
            let lag = match l.helper_lag() {
                Some(lag) => format!(", helper lag {lag}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  loop {} ({} iters{lag})\n",
                l.loop_name, l.iters
            ));
            for r in &l.refs {
                out.push_str(&format!(
                    "    {:<18} {:<7} {}\n",
                    r.name,
                    mode_str(r.mode),
                    r.verdict
                ));
            }
            for d in &l.diagnostics {
                out.push_str(&format!("    {d}\n"));
            }
        }
    }
    out.push_str(&format!(
        "\nsummary: {admitted}/{} targets admitted\n",
        targets.len()
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_analysis_json(
    targets: &[(String, WorkloadReport)],
    n: u64,
    seed: u64,
    scale: f64,
) -> String {
    let opt = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"cascade-analyze-v1\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"n\": {n}, \"seed\": {seed}, \"scale\": {scale}}},\n"
    ));
    out.push_str("  \"targets\": [\n");
    for (t, (name, rep)) in targets.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(name)));
        out.push_str(&format!("      \"rt_ok\": {},\n", rep.rt_ok()));
        out.push_str("      \"loops\": [\n");
        for (i, l) in rep.loops.iter().enumerate() {
            out.push_str("        {\n");
            out.push_str(&format!(
                "          \"name\": \"{}\",\n          \"iters\": {},\n          \"helper_lag\": {},\n          \"rt_ok\": {},\n",
                json_escape(&l.loop_name),
                l.iters,
                opt(l.helper_lag()),
                l.rt_ok()
            ));
            out.push_str("          \"refs\": [\n");
            for (j, r) in l.refs.iter().enumerate() {
                let fp = r.footprint.as_ref().map_or("null".to_string(), |f| {
                    format!(
                        "{{\"lo\": {}, \"hi\": {}, \"exact\": {}}}",
                        f.lo, f.hi, f.exact
                    )
                });
                out.push_str(&format!(
                    "            {{\"name\": \"{}\", \"mode\": \"{}\", \"class\": \"{}\", \"lag\": {}, \"footprint\": {fp}}}{}\n",
                    json_escape(r.name),
                    mode_str(r.mode),
                    r.verdict.class(),
                    opt(r.verdict.lag()),
                    if j + 1 < l.refs.len() { "," } else { "" }
                ));
            }
            out.push_str("          ],\n");
            out.push_str("          \"diagnostics\": [\n");
            for (j, d) in l.diagnostics.iter().enumerate() {
                out.push_str(&format!(
                    "            {{\"code\": \"{}\", \"severity\": \"{}\", \"ref\": {}, \"message\": \"{}\"}}{}\n",
                    d.code.as_str(),
                    severity_str(d.severity),
                    d.ref_name
                        .as_ref()
                        .map_or("null".to_string(), |r| format!("\"{}\"", json_escape(r))),
                    json_escape(&d.message),
                    if j + 1 < l.diagnostics.len() { "," } else { "" }
                ));
            }
            out.push_str("          ]\n");
            out.push_str(&format!(
                "        }}{}\n",
                if i + 1 < rep.loops.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if t + 1 < targets.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// `cascade plan`: whole-loop transformation plans (cascade-analyze) —
/// the statement-level dependence graph condensed into a topologically
/// ordered fission partition with per-sub-loop DOALL/DOACROSS/sequential
/// schedules, plus the per-kernel mode matrix. Every emitted plan is
/// re-validated against the dynamic replay oracle; exits 1 (verification
/// failure) if any plan is contradicted.
pub fn plan(args: &Args) -> Result<String, ArgError> {
    let n = args.get_num("n", 4096u64)?;
    let seed = args.get_num("seed", 42u64)?;
    let scale = args.get_num("scale", 0.01f64)?;
    let format = args.get("format", "text");
    let file = args.get_opt("workload-file");
    // `--all` is accepted for symmetry with `analyze --all`; without a
    // --workload-file the full suite is the only target set anyway.
    let _ = args.flag("all");
    args.reject_unknown()?;

    let mut targets: Vec<(String, Workload)> = Vec::new();
    match file {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| ArgError::usage(format!("--workload-file {path}: {e}")))?;
            let w = from_text(&text)
                .map_err(|e| ArgError::usage(format!("--workload-file {path}: {e}")))?;
            targets.push((path, w));
        }
        None => {
            for k in cascade_kernels::suite(n, seed) {
                targets.push((k.name.to_string(), k.workload));
            }
            let p = Parmvr::build(ParmvrParams { scale, seed });
            targets.push(("wave5-parmvr".to_string(), p.workload));
        }
    }

    // Plan every loop of every target, then replay-validate each plan.
    let mut planned: Vec<PlannedTarget> = Vec::new();
    let mut contradicted: Vec<String> = Vec::new();
    for (name, w) in &targets {
        let plans = plan_workload(w);
        let mut violations = Vec::new();
        for (spec, p) in w.loops.iter().zip(&plans) {
            let v = check_plan(w, spec, p, 0x5eed);
            if !v.is_empty() {
                contradicted.push(format!("{name} / {}", spec.name));
            }
            violations.push(v);
        }
        planned.push((name.clone(), plans, violations));
    }

    let out = match format.as_str() {
        "text" => render_plan_text(&planned),
        "json" => render_plan_json(&planned, n, seed, scale),
        other => {
            return Err(ArgError::usage(format!(
                "unknown format '{other}' (text|json)"
            )))
        }
    };
    if contradicted.is_empty() {
        Ok(out)
    } else {
        Err(ArgError::verification(format!(
            "{out}\nplans contradicted by the replay oracle: {}",
            contradicted.join(", ")
        )))
    }
}

/// One planned target: name, per-loop plans, per-loop oracle violations.
type PlannedTarget = (String, Vec<TransformPlan>, Vec<Vec<Violation>>);

fn schedule_str(s: Schedule) -> String {
    match s {
        Schedule::DoAcross { lag } => format!("doacross({lag})"),
        s => s.as_str().to_string(),
    }
}

fn render_plan_text(planned: &[PlannedTarget]) -> String {
    let mut out = String::from("transformation plans (cascade-analyze)\n");
    let mut validated = 0usize;
    let mut total = 0usize;
    for (name, plans, violations) in planned {
        out.push_str(&format!("\n== {name}\n"));
        for (p, v) in plans.iter().zip(violations) {
            total += 1;
            let m = &p.modes;
            out.push_str(&format!(
                "  loop {} ({} iters{})\n",
                p.loop_name,
                p.iters,
                if p.opaque { ", opaque" } else { "" }
            ));
            for s in &p.statements {
                out.push_str(&format!("    S{}: {}\n", s.id, s.name));
            }
            if !p.edges.is_empty() {
                out.push_str("    deps:");
                for e in &p.edges {
                    out.push_str(&format!(
                        " S{}->S{} {}({})",
                        e.src,
                        e.dst,
                        e.kind.as_str(),
                        e.lag
                    ));
                }
                out.push('\n');
            }
            for (g, sub) in p.partition.iter().enumerate() {
                let stmts: Vec<String> = sub.statements.iter().map(|s| format!("S{s}")).collect();
                out.push_str(&format!(
                    "    sub-loop {g}: [{}] {}\n",
                    stmts.join(" "),
                    schedule_str(sub.schedule)
                ));
            }
            let opt = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
            out.push_str(&format!(
                "    modes: cascade={} helper_lag={} journalable={} fission={} ({} sub-loops) doacross={} parallel={} speculation_ready={}\n",
                m.cascade,
                opt(m.helper_lag),
                m.journalable,
                m.fissionable,
                m.sub_loops,
                opt(m.doacross_lag),
                m.parallel,
                m.speculation_ready
            ));
            for d in &p.diagnostics {
                out.push_str(&format!("    {d}\n"));
            }
            if v.is_empty() {
                validated += 1;
                out.push_str("    oracle: validated\n");
            } else {
                out.push_str(&format!(
                    "    oracle: CONTRADICTED ({} violations)\n",
                    v.len()
                ));
            }
        }
    }
    out.push_str(&format!(
        "\nsummary: {validated}/{total} plans replay-validated\n"
    ));
    out
}

fn render_plan_json(planned: &[PlannedTarget], n: u64, seed: u64, scale: f64) -> String {
    let opt = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"cascade-plan-v1\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"n\": {n}, \"seed\": {seed}, \"scale\": {scale}}},\n"
    ));
    out.push_str("  \"targets\": [\n");
    for (t, (name, plans, violations)) in planned.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(name)));
        out.push_str("      \"loops\": [\n");
        for (i, (p, v)) in plans.iter().zip(violations).enumerate() {
            let m = &p.modes;
            out.push_str("        {\n");
            out.push_str(&format!(
                "          \"name\": \"{}\",\n          \"iters\": {},\n          \"opaque\": {},\n",
                json_escape(&p.loop_name),
                p.iters,
                p.opaque
            ));
            out.push_str("          \"statements\": [\n");
            for (j, s) in p.statements.iter().enumerate() {
                out.push_str(&format!(
                    "            {{\"id\": {}, \"name\": \"{}\", \"anchor\": {}}}{}\n",
                    s.id,
                    json_escape(s.name),
                    s.anchor.map_or("null".to_string(), |a| a.to_string()),
                    if j + 1 < p.statements.len() { "," } else { "" }
                ));
            }
            out.push_str("          ],\n");
            out.push_str("          \"edges\": [\n");
            for (j, e) in p.edges.iter().enumerate() {
                out.push_str(&format!(
                    "            {{\"src\": {}, \"dst\": {}, \"kind\": \"{}\", \"lag\": {}, \"src_ref\": \"{}\", \"dst_ref\": \"{}\"}}{}\n",
                    e.src,
                    e.dst,
                    e.kind.as_str(),
                    e.lag,
                    json_escape(e.src_ref),
                    json_escape(e.dst_ref),
                    if j + 1 < p.edges.len() { "," } else { "" }
                ));
            }
            out.push_str("          ],\n");
            out.push_str("          \"partition\": [\n");
            for (j, sub) in p.partition.iter().enumerate() {
                let stmts: Vec<String> = sub.statements.iter().map(|s| s.to_string()).collect();
                out.push_str(&format!(
                    "            {{\"statements\": [{}], \"schedule\": \"{}\", \"lag\": {}}}{}\n",
                    stmts.join(", "),
                    schedule_str(sub.schedule),
                    opt(sub.carried_lag),
                    if j + 1 < p.partition.len() { "," } else { "" }
                ));
            }
            out.push_str("          ],\n");
            out.push_str(&format!(
                "          \"modes\": {{\"cascade\": {}, \"helper_lag\": {}, \"journalable\": {}, \"fissionable\": {}, \"sub_loops\": {}, \"doacross_lag\": {}, \"parallel\": {}, \"speculation_ready\": {}}},\n",
                m.cascade,
                opt(m.helper_lag),
                m.journalable,
                m.fissionable,
                m.sub_loops,
                opt(m.doacross_lag),
                m.parallel,
                m.speculation_ready
            ));
            out.push_str("          \"diagnostics\": [\n");
            for (j, d) in p.diagnostics.iter().enumerate() {
                out.push_str(&format!(
                    "            {{\"code\": \"{}\", \"severity\": \"{}\", \"ref\": {}, \"message\": \"{}\"}}{}\n",
                    d.code.as_str(),
                    severity_str(d.severity),
                    d.ref_name
                        .as_ref()
                        .map_or("null".to_string(), |r| format!("\"{}\"", json_escape(r))),
                    json_escape(&d.message),
                    if j + 1 < p.diagnostics.len() { "," } else { "" }
                ));
            }
            out.push_str("          ],\n");
            out.push_str(&format!("          \"oracle_violations\": {}\n", v.len()));
            out.push_str(&format!(
                "        }}{}\n",
                if i + 1 < plans.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if t + 1 < planned.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// `cascade sweep`
pub fn sweep(args: &Args) -> Result<String, ArgError> {
    let param = args.get("param", "procs");
    let machine = machine_from(args)?;
    let (workload, _arena, wname) = workload_from(args)?;
    let policy = sim_policy_from(args)?;
    let procs = args.get_num("procs", 4usize)?;
    let chunk = args.get_bytes("chunk", 64 * 1024)?;
    let calls = args.get_num("calls", 2usize)?;
    let values = args.get_list("values", &["2", "4", "8"]);
    args.reject_unknown()?;

    let base = run_sequential(&machine, &workload, calls, true);
    let mut out = format!(
        "sweep of {param} — {wname} on {}, policy {}\n",
        machine.name,
        policy.label()
    );
    for v in values {
        let (label, cfg) = match param.as_str() {
            "procs" => {
                let np: usize = v.parse().map_err(|_| {
                    ArgError::usage(format!("--values: '{v}' is not a processor count"))
                })?;
                (
                    format!("procs={v}"),
                    CascadeConfig {
                        nprocs: np,
                        chunk_bytes: chunk,
                        policy,
                        jump_out: true,
                        calls,
                        flush_between_calls: true,
                    },
                )
            }
            "chunk" => {
                let bytes = crate::args::parse_bytes(&v).ok_or_else(|| {
                    ArgError::usage(format!("--values: '{v}' is not a byte size"))
                })?;
                (
                    format!("chunk={v}"),
                    CascadeConfig {
                        nprocs: procs,
                        chunk_bytes: bytes,
                        policy,
                        jump_out: true,
                        calls,
                        flush_between_calls: true,
                    },
                )
            }
            other => {
                return Err(ArgError::usage(format!(
                    "unknown sweep parameter '{other}' (procs|chunk)"
                )))
            }
        };
        let r = run_cascaded(&machine, &workload, &cfg);
        out.push_str(&format!(
            "  {label:<14} speedup {:.3}\n",
            r.overall_speedup_vs(&base)
        ));
    }
    Ok(out)
}

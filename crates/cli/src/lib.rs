//! # cascade-cli — the `cascade` command
//!
//! A command-line front end to the cascaded-execution reproduction:
//!
//! ```text
//! cascade machines
//! cascade sim   --workload parmvr --machine r10000 --procs 8 --policy restructure+hoist
//! cascade sim   --workload synth-sparse --unbounded --chunk 16K
//! cascade rt    --workload parmvr --threads 4 --chunk-iters 2048 --policy restructure
//! cascade sweep --param procs --values 2,4,6,8 --machine r10000
//! cascade sweep --param chunk --values 4K,16K,64K,256K --machine ppro
//! ```
//!
//! The library exposes [`run`] (arguments in, report text out) so the
//! whole interface is unit-testable; the `cascade` binary is a thin
//! wrapper.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args, ErrorKind};

/// Entry point: parse `raw` (excluding `argv[0]`) and execute the
/// subcommand, returning the report text.
///
/// Every failure comes back as a typed [`ArgError`] — including a panic
/// inside a command, which is caught and reported as
/// [`ErrorKind::Internal`] instead of aborting the process mid-report.
pub fn run<I, S>(raw: I) -> Result<String, ArgError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args = Args::parse(raw)?;
    let dispatch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<String, ArgError> {
            match args.command.as_deref() {
                None | Some("help") => Ok(commands::help()),
                Some("machines") => commands::machines(&args),
                Some("sim") => commands::sim(&args),
                Some("rt") => commands::rt(&args),
                Some("run") => commands::run(&args),
                Some("metrics") => commands::metrics(&args),
                Some("chaos") => commands::chaos(&args),
                Some("resume") => commands::resume(&args),
                // Hidden: the child half of `chaos --kill`.
                Some("ckpt-run") => commands::ckpt_run(&args),
                Some("sweep") => commands::sweep(&args),
                Some("analyze") => commands::analyze(&args),
                Some("plan") => commands::plan(&args),
                Some("dump") => commands::dump(&args),
                Some("schedule") => commands::schedule(&args),
                Some(other) => Err(ArgError::usage(format!(
                    "unknown subcommand '{other}' (try: machines, sim, rt, run, metrics, chaos, resume, sweep, analyze, plan, dump, schedule, help)"
                ))),
            }
        },
    ));
    match dispatch {
        Ok(result) => result,
        Err(payload) => {
            let what = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(ArgError::internal(format!(
                "command panicked: {what} (this is a bug in cascade, not in your invocation)"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_is_the_default() {
        let out = run(Vec::<String>::new()).unwrap();
        assert!(out.contains("cascade sim"));
        assert!(out.contains("cascade rt"));
    }

    #[test]
    fn unknown_subcommand_errors() {
        let err = run(["frobnicate"]).unwrap_err();
        assert!(err.message().contains("unknown subcommand"));
    }

    #[test]
    fn machines_lists_both_testbeds() {
        let out = run(["machines"]).unwrap();
        assert!(out.contains("Pentium Pro"));
        assert!(out.contains("R10000"));
        assert!(out.contains("512 KB"));
    }

    #[test]
    fn sim_runs_a_tiny_parmvr() {
        let out = run([
            "sim",
            "--workload",
            "parmvr",
            "--scale",
            "0.005",
            "--procs",
            "2",
            "--policy",
            "prefetch",
        ])
        .unwrap();
        assert!(out.contains("overall speedup"), "missing summary: {out}");
        assert!(out.contains("prefetched"));
    }

    #[test]
    fn sim_per_loop_table() {
        let out = run([
            "sim",
            "--workload",
            "parmvr",
            "--scale",
            "0.005",
            "--per-loop",
        ])
        .unwrap();
        assert!(out.contains("L1 field gather"));
        assert!(out.contains("L15"));
    }

    #[test]
    fn sim_unbounded_synth() {
        let out = run([
            "sim",
            "--workload",
            "synth-sparse",
            "--n",
            "65536",
            "--unbounded",
            "--chunk",
            "8K",
        ])
        .unwrap();
        assert!(out.contains("unbounded"));
    }

    #[test]
    fn sim_future_machine() {
        let out = run([
            "sim",
            "--workload",
            "synth-dense",
            "--n",
            "65536",
            "--future",
            "4",
        ])
        .unwrap();
        assert!(out.contains("Future"));
    }

    #[test]
    fn rt_verifies_bitwise() {
        let out = run([
            "rt",
            "--workload",
            "synth-dense",
            "--n",
            "32768",
            "--threads",
            "2",
            "--chunk-iters",
            "512",
        ])
        .unwrap();
        assert!(out.contains("bitwise identical"), "{out}");
    }

    #[test]
    fn metrics_reports_the_phase_breakdown() {
        let out = run([
            "metrics",
            "--n",
            "8192",
            "--threads",
            "2",
            "--chunk-iters",
            "512",
        ])
        .unwrap();
        assert!(out.contains("real-thread cascade metrics"), "{out}");
        assert!(out.contains("token handoffs:"), "{out}");
        assert!(out.contains("helper"), "{out}");
        assert!(out.contains("spin"), "{out}");
        assert!(out.contains("execute"), "{out}");
    }

    #[test]
    fn metrics_json_carries_the_shared_schema() {
        let out = run([
            "metrics", "--source", "sim", "--n", "8192", "--procs", "2", "--chunk", "8K",
            "--format", "json", "--events",
        ])
        .unwrap();
        assert!(out.contains("\"source\": \"simulated\""), "{out}");
        assert!(out.contains("\"time_unit\": \"cycles\""), "{out}");
        assert!(out.contains("\"handoff\""), "{out}");
        assert!(out.contains("\"kind\": \"execute\""), "{out}");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                out.matches(open).count(),
                out.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn metrics_rt_json_reports_nanoseconds() {
        let out = run([
            "metrics",
            "--n",
            "8192",
            "--threads",
            "2",
            "--chunk-iters",
            "512",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(out.contains("\"source\": \"real\""), "{out}");
        assert!(out.contains("\"time_unit\": \"ns\""), "{out}");
    }

    /// The simulated metrics report is deterministic, so the exact JSON
    /// for the default invocation is checked in as a golden file. This
    /// pins the schema AND the simulator's cost model: a diff here means
    /// either an intentional schema change (regenerate the golden with
    /// `cargo run --release -p cascade-cli -- metrics --source sim
    /// --format json --events --out results/metrics-golden.json`) or an
    /// unintended behaviour change.
    #[test]
    fn metrics_sim_matches_the_checked_in_golden() {
        let out = run(["metrics", "--source", "sim", "--format", "json", "--events"]).unwrap();
        let golden_path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/metrics-golden.json"
        );
        let golden = std::fs::read_to_string(golden_path).expect("golden file must exist");
        assert_eq!(
            out, golden,
            "simulated metrics diverged from results/metrics-golden.json"
        );
    }

    #[test]
    fn metrics_rejects_unknown_source_and_format() {
        let err = run(["metrics", "--source", "fpga"]).unwrap_err();
        assert!(err.message().contains("rt|sim"), "{err}");
        let err = run(["metrics", "--n", "4096", "--format", "xml"]).unwrap_err();
        assert!(err.message().contains("text|json"), "{err}");
    }

    #[test]
    fn chaos_matrix_recovers_every_plan() {
        let out = run([
            "chaos",
            "--n",
            "2048",
            "--plans",
            "6",
            "--chunk-iters",
            "64",
            "--max-threads",
            "3",
            "--stall-ms",
            "60",
        ])
        .unwrap();
        assert!(out.contains("chaos matrix: 6 fault plans"), "{out}");
        assert!(out.contains("summary:"), "{out}");
        assert!(out.contains("0 diverged"), "{out}");
        assert!(out.contains("no hangs, no silent corruption"), "{out}");
    }

    #[test]
    fn chaos_cancel_storm_resumes_bitwise_across_tolerances() {
        for tolerance in ["salvage", "retry", "fail-fast"] {
            let out = run([
                "chaos",
                "--cancel",
                "--n",
                "2048",
                "--plans",
                "6",
                "--chunk-iters",
                "64",
                "--max-threads",
                "3",
                "--stall-ms",
                "60",
                "--tolerance",
                tolerance,
            ])
            .unwrap_or_else(|e| panic!("[{tolerance}] {e}"));
            assert!(out.contains("cancel storm on"), "[{tolerance}] {out}");
            assert!(out.contains("cancelled+resumed"), "[{tolerance}] {out}");
            assert!(out.contains("0 diverged"), "[{tolerance}] {out}");
            assert!(
                out.contains("no hangs, no silent corruption"),
                "[{tolerance}] {out}"
            );
        }
    }

    #[test]
    fn chaos_rejects_zero_plans() {
        let err = run(["chaos", "--plans", "0"]).unwrap_err();
        assert!(err.message().contains("--plans"), "{err}");
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn chaos_retry_tolerance_reports_the_ladder() {
        let out = run([
            "chaos",
            "--n",
            "2048",
            "--plans",
            "6",
            "--chunk-iters",
            "64",
            "--max-threads",
            "3",
            "--stall-ms",
            "60",
            "--tolerance",
            "retry",
        ])
        .unwrap();
        assert!(out.contains("tolerance retry"), "{out}");
        assert!(
            out.contains("recovery ladder: fail-fast -> retry -> quarantine -> salvage"),
            "{out}"
        );
        assert!(out.contains("recovered in-cascade"), "{out}");
        assert!(out.contains("no hangs, no silent corruption"), "{out}");
    }

    #[test]
    fn chaos_rejects_unknown_tolerance() {
        let err = run(["chaos", "--plans", "2", "--tolerance", "heroic"]).unwrap_err();
        assert!(err.message().contains("--tolerance"), "{err}");
        assert_eq!(err.kind(), ErrorKind::Usage);
    }

    #[test]
    fn rt_verify_every_replays_every_chunk() {
        let out = run([
            "rt",
            "--workload",
            "synth-dense",
            "--n",
            "8192",
            "--threads",
            "2",
            "--chunk-iters",
            "512",
            "--verify",
            "every",
        ])
        .unwrap();
        assert!(out.contains("chunks replay-verified"), "{out}");
        assert!(out.contains("no corruption"), "{out}");
        assert!(out.contains("bitwise identical"), "{out}");
    }

    #[test]
    fn rt_rejects_malformed_verify_policies() {
        let err = run(["rt", "--n", "4096", "--verify", "paranoid"]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert!(
            err.message().contains("off|checksum|every|sampled:K"),
            "{err}"
        );
        let err = run(["rt", "--n", "4096", "--verify", "sampled:0"]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert!(err.message().contains("sampled:0"), "{err}");
    }

    #[test]
    fn chaos_corrupt_storm_detects_every_flip() {
        let out = run([
            "chaos",
            "--corrupt",
            "--n",
            "4096",
            "--plans",
            "4",
            "--chunk-iters",
            "64",
            "--max-threads",
            "3",
        ])
        .unwrap();
        assert!(out.contains("corruption storm"), "{out}");
        assert!(out.contains("0 missed"), "{out}");
        assert!(out.contains("0 diverged"), "{out}");
        assert!(
            out.contains("every flip detected online, zero silent divergence"),
            "{out}"
        );
    }

    #[test]
    fn chaos_corrupt_fail_fast_resumes_clean() {
        let out = run([
            "chaos",
            "--corrupt",
            "--n",
            "4096",
            "--plans",
            "4",
            "--chunk-iters",
            "64",
            "--max-threads",
            "3",
            "--tolerance",
            "fail-fast",
        ])
        .unwrap();
        assert!(out.contains("failed fast with clean resume"), "{out}");
        assert!(
            out.contains("every flip detected online, zero silent divergence"),
            "{out}"
        );
    }

    #[test]
    fn chaos_corrupt_rejects_non_replaying_policies() {
        for policy in ["off", "checksum"] {
            let err = run(["chaos", "--corrupt", "--verify", policy]).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Usage, "[{policy}]");
            assert!(err.message().contains("replay"), "[{policy}] {err}");
        }
    }

    #[test]
    fn sweep_over_procs() {
        let out = run([
            "sweep",
            "--param",
            "procs",
            "--values",
            "2,3",
            "--workload",
            "parmvr",
            "--scale",
            "0.005",
        ])
        .unwrap();
        assert!(out.contains("procs=2"));
        assert!(out.contains("procs=3"));
    }

    #[test]
    fn sweep_over_chunk() {
        let out = run([
            "sweep",
            "--param",
            "chunk",
            "--values",
            "8K,32K",
            "--workload",
            "synth-sparse",
            "--n",
            "65536",
        ])
        .unwrap();
        assert!(out.contains("chunk=8K"));
        assert!(out.contains("chunk=32K"));
    }

    #[test]
    fn analyze_profiles_a_gather_loop() {
        let out = run([
            "analyze",
            "--workload",
            "parmvr",
            "--scale",
            "0.005",
            "--loop",
            "0",
        ])
        .unwrap();
        assert!(out.contains("original"), "{out}");
        assert!(out.contains("restructured"));
        assert!(out.contains("dominant strides"));
    }

    #[test]
    fn analyze_all_reports_the_lattice() {
        let out = run(["analyze", "--all", "--n", "1024", "--scale", "0.005"]).unwrap();
        assert!(out.contains("triangular_solve: admitted"), "{out}");
        assert!(out.contains("horizon_safe(lag=1)"), "{out}");
        assert!(out.contains("wave5-parmvr: admitted"), "{out}");
        assert!(out.contains("7/7 targets admitted"), "{out}");
    }

    #[test]
    fn analyze_all_json_is_structured() {
        let out = run([
            "analyze", "--all", "--n", "1024", "--scale", "0.005", "--format", "json",
        ])
        .unwrap();
        assert!(out.contains("\"schema\": \"cascade-analyze-v1\""), "{out}");
        assert!(out.contains("\"class\": \"horizon_safe\""), "{out}");
        assert!(out.contains("\"code\": \"AN005\""), "{out}");
        // Balanced braces/brackets: a cheap structural sanity check that
        // needs no JSON parser.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                out.matches(open).count(),
                out.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn analyze_all_unsafe_workload_is_a_verification_failure() {
        // A loop that writes its own index array is unanalyzable: the
        // gather's targets change under the loop's feet.
        let dir = std::env::temp_dir().join("cascade-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unsafe.txt");
        let contents: Vec<String> = (0..128u64).map(|i| i.to_string()).collect();
        std::fs::write(
            &path,
            format!(
                "cascade-workload v1\n\
                 array x elem=8 len=128 align=64\n\
                 array idx elem=8 len=128 align=64\n\
                 index 1 {}\n\
                 loop 64 compute=4 hoistable=0 hoist_bytes=0 name=writes-own-index\n\
                 ref 0 mode=r bytes=8 hoistable=0 indirect 1 0 1\n\
                 ref 1 mode=w bytes=8 hoistable=0 affine 0 1\n",
                contents.join(" ")
            ),
        )
        .unwrap();
        let err = run([
            "analyze",
            "--all",
            "--workload-file",
            path.to_str().unwrap(),
        ])
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Verification);
        assert_eq!(err.exit_code(), 1);
        assert!(err.message().contains("AN003"), "{err}");
        assert!(err.message().contains("REJECTED"), "{err}");
    }

    #[test]
    fn plan_reports_the_mode_matrix() {
        let out = run(["plan", "--all", "--n", "1024", "--scale", "0.005"]).unwrap();
        assert!(out.contains("== fused_stream"), "{out}");
        assert!(out.contains("sub-loop 0: [S0] sequential"), "{out}");
        assert!(out.contains("sub-loop 1: [S1] parallel"), "{out}");
        assert!(out.contains("fission=true (2 sub-loops)"), "{out}");
        assert!(out.contains("S0->S1 flow(1)"), "{out}");
        assert!(
            out.contains("summary: 21/21 plans replay-validated"),
            "{out}"
        );
    }

    #[test]
    fn plan_json_matches_the_checked_in_golden() {
        // Default parameters are exactly what CI regenerates; the golden
        // protects every layer from dependence edges to mode threading.
        let out = run(["plan", "--all", "--format", "json"]).unwrap();
        let golden = include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/plan-golden.json"
        ));
        assert!(
            out == golden,
            "plan output drifted from results/plan-golden.json; regenerate with:\n  \
             cargo run --release -p cascade-cli -- plan --all --format json > results/plan-golden.json"
        );
    }

    #[test]
    fn run_plan_mode_executes_fused_stream_bitwise() {
        // The acceptance loop for the plan-driven executor: fused_stream
        // fissions into [sequential recurrence, parallel consumer], and
        // the planned run on real threads must be bitwise-equal to
        // straight sequential execution.
        let dir = std::env::temp_dir().join("cascade-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fused-stream.txt");
        let k = cascade_kernels::fused_stream(4096, 11);
        std::fs::write(&path, cascade_trace::to_text(&k.workload)).unwrap();
        let out = run([
            "run",
            "--workload-file",
            path.to_str().unwrap(),
            "--threads",
            "3",
            "--chunk-iters",
            "256",
        ])
        .unwrap();
        assert!(out.contains("plan-driven execution"), "{out}");
        assert!(out.contains("2 sub-loops"), "{out}");
        assert!(out.contains("sub-loop 0: sequential"), "{out}");
        assert!(out.contains("sub-loop 1: parallel"), "{out}");
        assert!(out.contains("bitwise identical"), "{out}");
    }

    #[test]
    fn run_plan_mode_executes_parmvr_bitwise() {
        let out = run([
            "run",
            "--workload",
            "parmvr",
            "--scale",
            "0.005",
            "--threads",
            "2",
            "--chunk-iters",
            "512",
        ])
        .unwrap();
        assert!(out.contains("plan-driven execution"), "{out}");
        // The PARMVR suite mixes DOALL sweeps with scatter loops whose
        // plans stay sequential; both must ride the planned executor.
        assert!(out.contains("parallel"), "{out}");
        assert!(out.contains("sequential"), "{out}");
        assert!(out.contains("bitwise identical"), "{out}");
    }

    #[test]
    fn run_cascade_mode_delegates_to_the_token_runtime() {
        let out = run([
            "run",
            "--mode",
            "cascade",
            "--workload",
            "synth-dense",
            "--n",
            "4096",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("real-thread cascaded execution"), "{out}");
        assert!(out.contains("bitwise identical"), "{out}");
    }

    #[test]
    fn run_rejects_unknown_mode() {
        let err = run(["run", "--mode", "speculative"]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert!(err.message().contains("cascade|plan"), "{err}");
    }

    #[test]
    fn chaos_plan_matrix_recovers_across_tolerances() {
        // The planned executor under the full storm — injected faults,
        // mid-mutation panics, cancellation — must never corrupt:
        // every case finishes bitwise, salvages bitwise, resumes
        // bitwise from the committed prefix, or reports a typed error.
        for tol in ["salvage", "retry", "fail-fast"] {
            let out = run([
                "chaos",
                "--mode",
                "plan",
                "--plans",
                "6",
                "--n",
                "1024",
                "--seed",
                "3",
                "--max-threads",
                "3",
                "--tolerance",
                tol,
                "--mid-mutation",
                "--cancel",
            ])
            .unwrap_or_else(|e| panic!("tolerance {tol}: {e}"));
            assert!(
                out.contains("no hangs, no silent corruption"),
                "{tol}: {out}"
            );
            assert!(out.contains("0 diverged"), "{tol}: {out}");
        }
    }

    #[test]
    fn plan_rejects_unknown_format() {
        let err = run(["plan", "--format", "yaml"]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert!(
            err.message().contains("unknown format"),
            "{}",
            err.message()
        );
    }

    #[test]
    fn analyze_all_rejects_unknown_format() {
        let err = run(["analyze", "--all", "--format", "xml"]).unwrap_err();
        assert!(err.message().contains("text|json"), "{err}");
        assert_eq!(err.kind(), ErrorKind::Usage);
    }

    #[test]
    fn analyze_rejects_out_of_range_loop() {
        let err = run([
            "analyze",
            "--workload",
            "synth-dense",
            "--n",
            "4096",
            "--loop",
            "5",
        ])
        .unwrap_err();
        assert!(err.message().contains("loops"));
    }

    #[test]
    fn dump_then_simulate_round_trips() {
        let dir = std::env::temp_dir().join("cascade-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wl.txt");
        let p = path.to_str().unwrap();
        let out = run([
            "dump",
            "--workload",
            "synth-dense",
            "--n",
            "4096",
            "--out",
            p,
        ])
        .unwrap();
        assert!(out.contains("wrote"));
        let sim = run(["sim", "--workload-file", p, "--procs", "2", "--chunk", "4K"]).unwrap();
        assert!(sim.contains("overall speedup"), "{sim}");
        let sched = run([
            "schedule",
            "--workload-file",
            p,
            "--procs",
            "2",
            "--chunks",
            "6",
        ])
        .unwrap();
        assert!(sched.contains("E"), "{sched}");
        assert!(sched.contains("helper phase"));
    }

    #[test]
    fn schedule_renders_a_timeline() {
        let out = run([
            "schedule",
            "--workload",
            "parmvr",
            "--scale",
            "0.005",
            "--procs",
            "3",
        ])
        .unwrap();
        assert!(out.contains("proc 0"));
        assert!(out.contains("proc 2"));
        assert!(out.contains("execution phase"));
    }

    /// Run a small checkpointed governed loop to completion, leaving a
    /// fully populated checkpoint directory behind for `resume` tests.
    fn make_checkpoint(tag: &str) -> std::path::PathBuf {
        use cascade_rt::{
            CkptMeta, CkptPolicy, CkptSink, CkptWriter, RtPolicy, RunConfig, RunnerConfig,
            SpecProgram,
        };
        use cascade_synth::{Synth, Variant};
        let dir =
            std::env::temp_dir().join(format!("cascade-cli-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = Synth::build(4096, Variant::Sparse, 7);
        let text = cascade_trace::to_text(&s.workload);
        let base = s.arena.bytes().to_vec();
        let iters = s.workload.loops[0].iters;
        let prog = SpecProgram::new(s.workload, s.arena).unwrap();
        let writer = CkptWriter::create(
            &dir,
            &text,
            CkptMeta {
                loop_index: 0,
                iters,
                iters_per_chunk: 256,
            },
            &base,
        )
        .unwrap();
        let cfg = RunConfig {
            runner: RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 256,
                policy: RtPolicy::Restructure,
                poll_batch: 8,
            },
            ckpt: CkptPolicy::EveryChunks(1),
            ckpt_sink: Some(CkptSink::new(writer)),
            ..RunConfig::default()
        };
        cascade_rt::try_run_governed(&prog.kernel(0), &cfg).unwrap();
        dir
    }

    #[test]
    fn resume_restores_a_checkpointed_run_bitwise() {
        let dir = make_checkpoint("ok");
        let out = run(["resume", "--dir", dir.to_str().unwrap(), "--verify"]).unwrap();
        assert!(out.contains("finished sequentially"), "{out}");
        assert!(
            out.contains("bitwise identical to an uninterrupted sequential run"),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_a_corrupted_checkpoint() {
        let dir = make_checkpoint("corrupt");
        let p = dir.join("base.bin");
        let mut b = std::fs::read(&p).unwrap();
        b[0] ^= 1;
        std::fs::write(&p, &b).unwrap();
        let err = run(["resume", "--dir", dir.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Usage);
        assert_eq!(err.exit_code(), 2);
        assert!(err.message().contains("base.bin"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_requires_a_directory() {
        let err = run(["resume"]).unwrap_err();
        assert!(err.message().contains("--dir"), "{err}");
        assert_eq!(err.kind(), ErrorKind::Usage);
    }

    #[test]
    fn bad_machine_is_reported() {
        let err = run(["sim", "--machine", "cray"]).unwrap_err();
        assert!(err.message().contains("machine"));
    }

    #[test]
    fn typo_options_are_rejected() {
        let err = run(["sim", "--prox", "4"]).unwrap_err();
        assert!(err.message().contains("unknown option"), "{err}");
    }
}

//! The `cascade` binary: thin wrapper over [`cascade_cli::run`].
//!
//! Exit codes: 0 on success, 1 when a verification run (e.g. `chaos`)
//! detected a correctness failure, 2 on usage errors.

fn main() {
    match cascade_cli::run(std::env::args().skip(1)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            if e.0.starts_with("chaos:") {
                std::process::exit(1);
            }
            eprintln!("run `cascade help` for usage");
            std::process::exit(2);
        }
    }
}

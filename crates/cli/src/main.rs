//! The `cascade` binary: thin wrapper over [`cascade_cli::run`].

fn main() {
    match cascade_cli::run(std::env::args().skip(1)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `cascade help` for usage");
            std::process::exit(2);
        }
    }
}

//! The `cascade` binary: thin wrapper over [`cascade_cli::run`].
//!
//! Exit codes come from the typed [`cascade_cli::ArgError`]: 0 on
//! success, 1 when a verification run (e.g. `chaos`) detected a
//! correctness failure, 2 on usage errors or internal errors.

fn main() {
    match cascade_cli::run(std::env::args().skip(1)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            if !e.is_verification() {
                eprintln!("run `cascade help` for usage");
            }
            std::process::exit(e.exit_code());
        }
    }
}

//! Loop descriptions: the reference streams and compute demand of one
//! unparallelized loop, machine-independently.
//!
//! A [`LoopSpec`] is the unit the cascade engine schedules. It captures what
//! the paper's §2 needs to know about a loop:
//!
//! * which arrays it touches, with what pattern (affine or indirect), width
//!   and mode — drives the simulated reference stream;
//! * bytes touched per iteration — drives chunk sizing (§2.2);
//! * which operands are read-only — drives sequential-buffer restructuring;
//! * which work involves only read-only values — drives hoisting into the
//!   helper phase (§2.1 last paragraph).

use crate::diag::{panic_on_first_error, DiagCode, Diagnostic, Severity};
use crate::space::ArrayId;

/// How a stream walks its array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Element index `base + stride * i` for iteration `i`.
    Affine {
        /// Starting element index.
        base: i64,
        /// Elements advanced per iteration (may be negative).
        stride: i64,
    },
    /// Element index `index[ibase + istride * i]` — a gather/scatter through
    /// an index array whose contents live in [`crate::space::IndexStore`].
    Indirect {
        /// The index array (read 4 bytes per iteration).
        index: ArrayId,
        /// Starting element index within the index array.
        ibase: i64,
        /// Index-array elements advanced per iteration.
        istride: i64,
    },
}

impl Pattern {
    /// Is this stream address-predictable (hardware/compiler prefetchable)?
    #[inline]
    pub fn is_affine(&self) -> bool {
        matches!(self, Pattern::Affine { .. })
    }
}

/// What the loop does to the referenced element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Operand is only read. Eligible for sequential-buffer restructuring.
    Read,
    /// Element is only written (write-allocate still fetches the line).
    Write,
    /// Read-modify-write (e.g. the scatter-add `rho(ij(i)) += ...`).
    Modify,
}

impl Mode {
    /// True for `Read` — the only mode whose data restructuring may pack.
    #[inline]
    pub fn is_read_only(&self) -> bool {
        matches!(self, Mode::Read)
    }

    /// True when the mode stores to the element.
    #[inline]
    pub fn writes(&self) -> bool {
        matches!(self, Mode::Write | Mode::Modify)
    }
}

/// One reference stream of a loop (one array operand position).
#[derive(Debug, Clone)]
pub struct StreamRef {
    /// Operand name for reports (e.g. `"ex(ij(i))"`).
    pub name: &'static str,
    /// The referenced array.
    pub array: ArrayId,
    /// Address pattern.
    pub pattern: Pattern,
    /// Read/write mode.
    pub mode: Mode,
    /// Access width in bytes (typically the element size).
    pub bytes: u32,
    /// True when the operand participates only in computation over
    /// read-only values, so that computation can be hoisted into the helper
    /// phase under `Restructure { hoist: true }`.
    pub hoistable: bool,
}

/// Size in bytes of one index-array element (indices are `u32`).
pub const INDEX_BYTES: u32 = 4;

/// A complete loop description.
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// Loop name (e.g. `"L5 scatter-add charge deposition"`).
    pub name: String,
    /// Iteration count.
    pub iters: u64,
    /// The reference streams of the loop body.
    pub refs: Vec<StreamRef>,
    /// Compute cycles per iteration beyond memory accesses (ALU/FPU work,
    /// loop control).
    pub compute: f64,
    /// Of `compute`, the cycles that involve only read-only operands and
    /// move into the helper phase when hoisting (must be `<= compute`).
    pub hoistable_compute: f64,
    /// Bytes per iteration of precomputed result streamed through the
    /// sequential buffer when hoisting replaces the hoistable operands.
    pub hoist_result_bytes: u32,
}

impl LoopSpec {
    /// Check internal consistency, reporting every contradiction as a
    /// typed [`Diagnostic`] (empty vector = well-formed). This is the
    /// fallible face of [`LoopSpec::validate`]; the helper-safety analyzer
    /// in `cascade-analyze` folds these findings into its reports.
    pub fn try_validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        if self.iters == 0 {
            diags.push(Diagnostic::loop_level(
                DiagCode::EmptyLoop,
                Severity::Error,
                &self.name,
                format!("{}: empty loop", self.name),
            ));
        }
        if self.refs.is_empty() {
            diags.push(Diagnostic::loop_level(
                DiagCode::NoRefs,
                Severity::Error,
                &self.name,
                format!("{}: loop touches no memory", self.name),
            ));
        }
        if self.hoistable_compute > self.compute {
            diags.push(Diagnostic::loop_level(
                DiagCode::HoistExceedsCompute,
                Severity::Error,
                &self.name,
                format!("{}: hoistable compute exceeds total compute", self.name),
            ));
        }
        let any_hoistable = self.refs.iter().any(|r| r.hoistable);
        if any_hoistable && self.hoist_result_bytes == 0 {
            diags.push(Diagnostic::loop_level(
                DiagCode::HoistNeedsResultWidth,
                Severity::Error,
                &self.name,
                format!("{}: hoistable refs need a hoist result width", self.name),
            ));
        }
        for r in &self.refs {
            if r.hoistable && !r.mode.is_read_only() {
                diags.push(Diagnostic::ref_level(
                    DiagCode::HoistableNotReadOnly,
                    Severity::Error,
                    &self.name,
                    r.name,
                    format!(
                        "{}: hoistable operand {} must be read-only",
                        self.name, r.name
                    ),
                ));
            }
            if r.bytes == 0 {
                diags.push(Diagnostic::ref_level(
                    DiagCode::ZeroWidthRef,
                    Severity::Error,
                    &self.name,
                    r.name,
                    format!("{}: zero-width ref {}", self.name, r.name),
                ));
            }
        }
        diags
    }

    /// Check internal consistency; panics on contradictions. Legacy shim
    /// over [`LoopSpec::try_validate`], kept for the simulators, which
    /// treat a malformed spec as a programming error.
    pub fn validate(&self) {
        panic_on_first_error(&self.try_validate());
    }

    /// Estimated bytes of data touched per iteration of the *original*
    /// loop: operand widths plus one index element per indirect stream.
    /// This is the estimate §2.2 uses to convert a chunk byte budget into an
    /// iteration count.
    pub fn bytes_per_iter(&self) -> u64 {
        self.refs
            .iter()
            .map(|r| {
                r.bytes as u64
                    + match r.pattern {
                        Pattern::Indirect { .. } => INDEX_BYTES as u64,
                        Pattern::Affine { .. } => 0,
                    }
            })
            .sum()
    }

    /// Cache-line-granular footprint estimate: bytes of *lines* a single
    /// iteration pulls into a cache with `line`-byte lines. A sparse
    /// affine stream (stride * elem >= line) consumes a whole line per
    /// iteration even though it reads only `bytes` of it; an indirect
    /// stream is charged a full line (random target). This is the estimate
    /// chunk planning uses (paper §2.2: chunks are sized by the data each
    /// iteration touches, and touched data arrives line by line).
    pub fn line_footprint_per_iter(&self, line: u64) -> u64 {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        self.refs
            .iter()
            .map(|r| {
                // An access wider than a line always pulls its full width;
                // otherwise the fresh footprint per iteration is the stride
                // distance, capped at one line.
                let width = r.bytes as u64;
                let data = match r.pattern {
                    Pattern::Affine { stride, .. } => (stride.unsigned_abs() * width)
                        .min(line.max(width))
                        .max(width.min(line)),
                    Pattern::Indirect { .. } => line.max(width),
                };
                let index = match r.pattern {
                    Pattern::Indirect { istride, .. } => (istride.unsigned_abs()
                        * INDEX_BYTES as u64)
                        .clamp(INDEX_BYTES as u64, line),
                    Pattern::Affine { .. } => 0,
                };
                data + index
            })
            .sum()
    }

    /// Bytes per iteration written to the sequential buffer by the
    /// restructuring helper (§2.1):
    ///
    /// * each non-hoisted read-only operand's value,
    /// * one combined result of `hoist_result_bytes` when `hoist` and any
    ///   operand is hoistable,
    /// * the index element of each *written* indirect stream (the scatter
    ///   indices are themselves read-only data).
    ///
    /// Read-only gathers' index elements are consumed during packing and do
    /// not reach the buffer.
    pub fn packed_bytes_per_iter(&self, hoist: bool) -> u64 {
        let mut bytes = 0u64;
        let mut hoisted_any = false;
        for r in &self.refs {
            match r.mode {
                Mode::Read => {
                    if hoist && r.hoistable {
                        hoisted_any = true;
                    } else {
                        bytes += r.bytes as u64;
                    }
                }
                Mode::Write | Mode::Modify => {
                    if let Pattern::Indirect { .. } = r.pattern {
                        bytes += INDEX_BYTES as u64;
                    }
                }
            }
        }
        if hoisted_any {
            bytes += self.hoist_result_bytes as u64;
        }
        bytes
    }

    /// Compute cycles per iteration that remain in the execution phase under
    /// the given hoisting setting.
    pub fn exec_compute(&self, hoist: bool) -> f64 {
        if hoist {
            self.compute - self.hoistable_compute
        } else {
            self.compute
        }
    }

    /// Total data footprint estimate of the loop in bytes.
    pub fn footprint(&self) -> u64 {
        self.bytes_per_iter() * self.iters
    }

    /// True when any stream is indirect (gather/scatter).
    pub fn has_indirection(&self) -> bool {
        self.refs
            .iter()
            .any(|r| matches!(r.pattern, Pattern::Indirect { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::AddressSpace;

    fn ids() -> (ArrayId, ArrayId, ArrayId) {
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 8, 100);
        let a = s.alloc("a", 8, 100);
        let ij = s.alloc("ij", 4, 100);
        (x, a, ij)
    }

    fn gather_scatter_spec() -> LoopSpec {
        let (x, a, ij) = ids();
        LoopSpec {
            name: "test".into(),
            iters: 100,
            refs: vec![
                StreamRef {
                    name: "a(i)",
                    array: a,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: true,
                },
                StreamRef {
                    name: "x(ij(i))",
                    array: x,
                    pattern: Pattern::Indirect {
                        index: ij,
                        ibase: 0,
                        istride: 1,
                    },
                    mode: Mode::Modify,
                    bytes: 8,
                    hoistable: false,
                },
            ],
            compute: 10.0,
            hoistable_compute: 4.0,
            hoist_result_bytes: 8,
        }
    }

    #[test]
    fn bytes_per_iter_includes_index_reads() {
        let spec = gather_scatter_spec();
        // a: 8 bytes; x: 8 bytes data + 4 bytes index.
        assert_eq!(spec.bytes_per_iter(), 20);
        assert_eq!(spec.footprint(), 2000);
    }

    #[test]
    fn packed_bytes_without_hoist_packs_ro_values_and_scatter_indices() {
        let spec = gather_scatter_spec();
        // a's value (8) + x's scatter index (4).
        assert_eq!(spec.packed_bytes_per_iter(false), 12);
    }

    #[test]
    fn packed_bytes_with_hoist_replaces_hoistable_operands() {
        let spec = gather_scatter_spec();
        // hoist result (8) + x's scatter index (4); a's value is folded in.
        assert_eq!(spec.packed_bytes_per_iter(true), 12);
        assert_eq!(spec.exec_compute(true), 6.0);
        assert_eq!(spec.exec_compute(false), 10.0);
    }

    #[test]
    fn validate_accepts_wellformed() {
        gather_scatter_spec().validate();
    }

    #[test]
    #[should_panic(expected = "must be read-only")]
    fn validate_rejects_hoistable_writes() {
        let mut spec = gather_scatter_spec();
        spec.refs[1].hoistable = true;
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "hoistable compute exceeds")]
    fn validate_rejects_excess_hoistable_compute() {
        let mut spec = gather_scatter_spec();
        spec.hoistable_compute = 11.0;
        spec.validate();
    }

    #[test]
    fn has_indirection_detects_gathers() {
        let spec = gather_scatter_spec();
        assert!(spec.has_indirection());
        let affine_only = LoopSpec {
            refs: vec![spec.refs[0].clone()],
            ..spec
        };
        assert!(!affine_only.has_indirection());
    }
}

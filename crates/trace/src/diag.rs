//! Lint-style diagnostics for workload validation and helper-safety
//! analysis.
//!
//! Every judgment the toolchain makes about a [`crate::spec::LoopSpec`] —
//! "this spec is malformed", "this operand races helpers", "this carried
//! read is safe behind the token horizon" — is reported as a typed
//! [`Diagnostic`] instead of a panic, so callers can collect, filter,
//! print, or serialize them (the `cascade analyze` subcommand renders them
//! both as text and JSON). The stable [`DiagCode`]s are documented in
//! `docs/ANALYSIS.md`; golden tests pin them per kernel, so changing a
//! verdict is a loud, reviewed event.

use std::fmt;

/// Stable machine-readable code identifying one class of diagnostic.
///
/// `VALxxx` codes come from structural spec validation
/// ([`crate::spec::LoopSpec::try_validate`]); `ANxxx` codes come from the
/// helper-safety analysis in `cascade-analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// VAL001: loop has zero iterations.
    EmptyLoop,
    /// VAL002: loop has no reference streams.
    NoRefs,
    /// VAL003: `hoistable_compute` exceeds `compute`.
    HoistExceedsCompute,
    /// VAL004: hoistable refs present but `hoist_result_bytes == 0`.
    HoistNeedsResultWidth,
    /// VAL005: a hoistable operand is not read-only.
    HoistableNotReadOnly,
    /// VAL006: a ref has zero access width.
    ZeroWidthRef,
    /// VAL007: workload has no loops.
    NoLoops,
    /// AN001: loop mixes operand widths (the real-thread interpreter
    /// requires a uniform width).
    MixedWidth,
    /// AN002: operand width is not 4 or 8 bytes (unsupported by the
    /// real-thread interpreter).
    UnsupportedWidth,
    /// AN003: an index array is written by the same loop, so helpers
    /// cannot trust its contents.
    WrittenIndexArray,
    /// AN004: an indirect ref's index array has no installed contents.
    MissingIndexContents,
    /// AN005: a read operand aliases a write of the same loop with a
    /// forward (flow) dependence — helpers must respect the horizon.
    CarriedRead,
    /// AN006: a read operand overlaps a written array but carries no flow
    /// dependence (anti/output only, or disjoint intervals) — packable.
    BenignOverlap,
    /// AN007: arena does not match the workload's address-space extent.
    ArenaMismatch,
    /// AN008: a pattern resolves to an element index outside its array
    /// (negative, or at/past the array length).
    OutOfBounds,
    /// AN009: a statement's access pattern cannot be resolved statically
    /// (missing/written index contents), so the transformation planner
    /// degrades the loop to a single opaque sequential residue.
    PlanOpaque,
    /// AN010: the dependence graph proves a fission into two or more
    /// independently schedulable sub-loops legal.
    FissionLegal,
    /// AN011: a sub-loop carries a dependence with minimal lag `L >= 2`,
    /// admitting a pipelined DOACROSS post/wait schedule at that lag.
    DoacrossLag,
    /// AN012: a sub-loop carries no loop-carried dependence at all — its
    /// iterations may run in any order (DOALL).
    PlanParallel,
    /// AN013: a proposed fission partition violates a dependence edge
    /// (a source statement is scheduled after its dependent).
    IllegalPartition,
}

impl DiagCode {
    /// The stable `VALxxx` / `ANxxx` string for reports and golden tests.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::EmptyLoop => "VAL001",
            DiagCode::NoRefs => "VAL002",
            DiagCode::HoistExceedsCompute => "VAL003",
            DiagCode::HoistNeedsResultWidth => "VAL004",
            DiagCode::HoistableNotReadOnly => "VAL005",
            DiagCode::ZeroWidthRef => "VAL006",
            DiagCode::NoLoops => "VAL007",
            DiagCode::MixedWidth => "AN001",
            DiagCode::UnsupportedWidth => "AN002",
            DiagCode::WrittenIndexArray => "AN003",
            DiagCode::MissingIndexContents => "AN004",
            DiagCode::CarriedRead => "AN005",
            DiagCode::BenignOverlap => "AN006",
            DiagCode::ArenaMismatch => "AN007",
            DiagCode::OutOfBounds => "AN008",
            DiagCode::PlanOpaque => "AN009",
            DiagCode::FissionLegal => "AN010",
            DiagCode::DoacrossLag => "AN011",
            DiagCode::PlanParallel => "AN012",
            DiagCode::IllegalPartition => "AN013",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a fact worth reporting (e.g. a benign overlap).
    Info,
    /// Suspicious but not disqualifying.
    Warning,
    /// The spec cannot run under the real-thread interpreter (or is
    /// structurally malformed).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One typed, lint-style finding about a loop (or workload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: DiagCode,
    /// Severity (errors make the loop non-runnable).
    pub severity: Severity,
    /// Name of the loop the finding is about (empty for workload-level
    /// findings such as [`DiagCode::NoLoops`]).
    pub loop_name: String,
    /// Name of the operand the finding is about, when it concerns one.
    pub ref_name: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic about a whole loop.
    pub fn loop_level(
        code: DiagCode,
        severity: Severity,
        loop_name: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            loop_name: loop_name.into(),
            ref_name: None,
            message: message.into(),
        }
    }

    /// Build a diagnostic about one operand of a loop.
    pub fn ref_level(
        code: DiagCode,
        severity: Severity,
        loop_name: impl Into<String>,
        ref_name: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            loop_name: loop_name.into(),
            ref_name: Some(ref_name.into()),
            message: message.into(),
        }
    }

    /// Is this an error-severity finding?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.code)?;
        if !self.loop_name.is_empty() {
            write!(f, " {}", self.loop_name)?;
        }
        if let Some(r) = &self.ref_name {
            write!(f, " · {r}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Render the first error of a diagnostic list as a panic, for the
/// panicking `validate()` shims kept for legacy callers.
pub fn panic_on_first_error(diags: &[Diagnostic]) {
    if let Some(d) = diags.iter().find(|d| d.is_error()) {
        panic!("{}", d.message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(DiagCode::EmptyLoop.as_str(), "VAL001");
        assert_eq!(DiagCode::CarriedRead.as_str(), "AN005");
        assert_eq!(format!("{}", DiagCode::MixedWidth), "AN001");
        assert_eq!(DiagCode::PlanOpaque.as_str(), "AN009");
        assert_eq!(DiagCode::FissionLegal.as_str(), "AN010");
        assert_eq!(DiagCode::DoacrossLag.as_str(), "AN011");
        assert_eq!(DiagCode::PlanParallel.as_str(), "AN012");
        assert_eq!(DiagCode::IllegalPartition.as_str(), "AN013");
    }

    #[test]
    fn display_includes_code_loop_and_ref() {
        let d = Diagnostic::ref_level(
            DiagCode::CarriedRead,
            Severity::Info,
            "iir",
            "y(i-1)",
            "carried read with lag 1",
        );
        let s = format!("{d}");
        assert!(s.contains("AN005"), "{s}");
        assert!(s.contains("iir"), "{s}");
        assert!(s.contains("y(i-1)"), "{s}");
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panic_shim_raises_first_error_message() {
        let diags = vec![
            Diagnostic::loop_level(DiagCode::BenignOverlap, Severity::Info, "l", "benign"),
            Diagnostic::loop_level(DiagCode::EmptyLoop, Severity::Error, "l", "boom"),
        ];
        panic_on_first_error(&diags);
    }

    #[test]
    fn no_error_means_no_panic() {
        let diags = vec![Diagnostic::loop_level(
            DiagCode::BenignOverlap,
            Severity::Info,
            "l",
            "benign",
        )];
        panic_on_first_error(&diags);
    }
}

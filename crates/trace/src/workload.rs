//! A complete workload: arrays, index contents, and the loop sequence.

use crate::diag::{panic_on_first_error, DiagCode, Diagnostic, Severity};
use crate::space::{AddressSpace, IndexStore};
use crate::spec::LoopSpec;

/// Everything a simulator needs to run a program fragment: the address
/// space its arrays live in, the contents of its index arrays, and the
/// sequence of unparallelized loops it executes (in order, sharing arrays,
/// as PARMVR's fifteen loops do).
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// Array placement.
    pub space: AddressSpace,
    /// Index-array contents for gathers/scatters.
    pub index: IndexStore,
    /// The loop sequence.
    pub loops: Vec<LoopSpec>,
}

impl Workload {
    /// Validate every loop spec, returning all findings as typed
    /// [`Diagnostic`]s (empty vector = well-formed).
    pub fn try_validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        if self.loops.is_empty() {
            diags.push(Diagnostic::loop_level(
                DiagCode::NoLoops,
                Severity::Error,
                "",
                "workload has no loops",
            ));
        }
        for l in &self.loops {
            diags.extend(l.try_validate());
        }
        diags
    }

    /// Validate every loop spec (panics on inconsistency). Legacy shim
    /// over [`Workload::try_validate`].
    pub fn validate(&self) {
        panic_on_first_error(&self.try_validate());
    }

    /// Sum of the loops' data footprints in bytes.
    pub fn footprint(&self) -> u64 {
        self.loops.iter().map(|l| l.footprint()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Mode, Pattern, StreamRef};

    #[test]
    fn footprint_sums_loops() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 1000);
        let mk = |iters| LoopSpec {
            name: "l".into(),
            iters,
            refs: vec![StreamRef {
                name: "a(i)",
                array: a,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: false,
            }],
            compute: 1.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        let w = Workload {
            space,
            index: IndexStore::new(),
            loops: vec![mk(100), mk(50)],
        };
        w.validate();
        assert_eq!(w.footprint(), 8 * 150);
    }

    #[test]
    #[should_panic(expected = "no loops")]
    fn empty_workload_is_invalid() {
        Workload::default().validate();
    }
}

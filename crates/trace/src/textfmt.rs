//! A human-readable text format for workloads, so loop populations can be
//! shared, diffed and hand-edited — and fed back through the CLI.
//!
//! The format is line-based and versioned:
//!
//! ```text
//! cascade-workload v1
//! array <name> elem=<bytes> len=<elems> align=<bytes>
//! index <array-ordinal> <v0> <v1> ...
//! loop <iters> compute=<f> hoistable=<f> hoist_bytes=<n> name=<free text>
//! ref <array-ordinal> mode=<r|w|m> bytes=<n> hoistable=<0|1> affine <base> <stride>
//! ref <array-ordinal> mode=<r|w|m> bytes=<n> hoistable=<0|1> indirect <index-ordinal> <ibase> <istride>
//! ```
//!
//! Arrays are referenced by allocation ordinal (their [`ArrayId`] index).
//! Round-tripping preserves the workload exactly — see the property test.

use crate::space::{AddressSpace, ArrayId, IndexStore};
use crate::spec::{LoopSpec, Mode, Pattern, StreamRef};
use crate::workload::Workload;

/// Magic first line of the format.
pub const HEADER: &str = "cascade-workload v1";

/// Serialization/parsing error with a line number where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line of the problem (0 = whole document).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}
impl std::error::Error for FormatError {}

fn err(line: usize, message: impl Into<String>) -> FormatError {
    FormatError {
        line,
        message: message.into(),
    }
}

/// Serialize a workload to the text format.
///
/// Note: leaked `&'static str` ref names are written as-is; names are not
/// preserved through parsing (refs get generated names), which does not
/// affect any simulation result.
pub fn to_text(w: &Workload) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for (_, def) in w.space.iter() {
        // Alignment is not recorded by the space; emit the largest power
        // of two dividing the base (capped at 1MB) so conflicts reproduce.
        let align = if def.base == 0 {
            1u64 << 20
        } else {
            (1u64 << def.base.trailing_zeros().min(20)).max(64)
        };
        out.push_str(&format!(
            "array {} elem={} len={} align={}\n",
            def.name.replace(' ', "_"),
            def.elem,
            def.len,
            align
        ));
    }
    for (id, def) in w.space.iter() {
        if w.index.contains(id) {
            out.push_str(&format!("index {}", id.0));
            for i in 0..def.len {
                out.push_str(&format!(" {}", w.index.get(id, i)));
            }
            out.push('\n');
        }
    }
    for spec in &w.loops {
        out.push_str(&format!(
            "loop {} compute={} hoistable={} hoist_bytes={} name={}\n",
            spec.iters, spec.compute, spec.hoistable_compute, spec.hoist_result_bytes, spec.name
        ));
        for r in &spec.refs {
            let mode = match r.mode {
                Mode::Read => "r",
                Mode::Write => "w",
                Mode::Modify => "m",
            };
            match r.pattern {
                Pattern::Affine { base, stride } => out.push_str(&format!(
                    "ref {} mode={} bytes={} hoistable={} affine {} {}\n",
                    r.array.0, mode, r.bytes, r.hoistable as u8, base, stride
                )),
                Pattern::Indirect {
                    index,
                    ibase,
                    istride,
                } => out.push_str(&format!(
                    "ref {} mode={} bytes={} hoistable={} indirect {} {} {}\n",
                    r.array.0, mode, r.bytes, r.hoistable as u8, index.0, ibase, istride
                )),
            }
        }
    }
    out
}

fn kv<'a>(tok: &'a str, key: &str, line: usize) -> Result<&'a str, FormatError> {
    tok.strip_prefix(key)
        .and_then(|s| s.strip_prefix('='))
        .ok_or_else(|| err(line, format!("expected {key}=..., got '{tok}'")))
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, FormatError> {
    s.parse()
        .map_err(|_| err(line, format!("cannot parse {what} from '{s}'")))
}

/// Parse a workload from the text format.
pub fn from_text(text: &str) -> Result<Workload, FormatError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(err(1, format!("missing header '{HEADER}'"))),
    }

    let mut space = AddressSpace::new();
    let mut index = IndexStore::new();
    let mut loops: Vec<LoopSpec> = Vec::new();
    let mut ids: Vec<ArrayId> = Vec::new();

    for (ln0, raw) in lines {
        let line = ln0 + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut toks = l.split_whitespace();
        match toks.next() {
            Some("array") => {
                let name = toks.next().ok_or_else(|| err(line, "array needs a name"))?;
                let elem: u32 =
                    parse_num(kv(toks.next().unwrap_or(""), "elem", line)?, line, "elem")?;
                let len: u64 = parse_num(kv(toks.next().unwrap_or(""), "len", line)?, line, "len")?;
                let align: u64 =
                    parse_num(kv(toks.next().unwrap_or(""), "align", line)?, line, "align")?;
                ids.push(space.alloc_aligned(name, elem, len, align));
            }
            Some("index") => {
                let ord: usize = parse_num(toks.next().unwrap_or(""), line, "array ordinal")?;
                let id = *ids
                    .get(ord)
                    .ok_or_else(|| err(line, "index array ordinal out of range"))?;
                let vals: Result<Vec<u32>, _> =
                    toks.map(|t| parse_num(t, line, "index value")).collect();
                index.set(id, vals?);
            }
            Some("loop") => {
                let iters: u64 = parse_num(toks.next().unwrap_or(""), line, "iters")?;
                let compute: f64 = parse_num(
                    kv(toks.next().unwrap_or(""), "compute", line)?,
                    line,
                    "compute",
                )?;
                let hoistable: f64 = parse_num(
                    kv(toks.next().unwrap_or(""), "hoistable", line)?,
                    line,
                    "hoistable",
                )?;
                let hoist_bytes: u32 = parse_num(
                    kv(toks.next().unwrap_or(""), "hoist_bytes", line)?,
                    line,
                    "hoist_bytes",
                )?;
                let rest: Vec<&str> = toks.collect();
                let name = rest
                    .join(" ")
                    .strip_prefix("name=")
                    .ok_or_else(|| err(line, "loop needs name=..."))?
                    .to_string();
                loops.push(LoopSpec {
                    name,
                    iters,
                    refs: Vec::new(),
                    compute,
                    hoistable_compute: hoistable,
                    hoist_result_bytes: hoist_bytes,
                });
            }
            Some("ref") => {
                let spec = loops
                    .last_mut()
                    .ok_or_else(|| err(line, "ref before any loop"))?;
                let ord: usize = parse_num(toks.next().unwrap_or(""), line, "array ordinal")?;
                let array = *ids
                    .get(ord)
                    .ok_or_else(|| err(line, "ref array ordinal out of range"))?;
                let mode = match kv(toks.next().unwrap_or(""), "mode", line)? {
                    "r" => Mode::Read,
                    "w" => Mode::Write,
                    "m" => Mode::Modify,
                    other => return Err(err(line, format!("unknown mode '{other}'"))),
                };
                let bytes: u32 =
                    parse_num(kv(toks.next().unwrap_or(""), "bytes", line)?, line, "bytes")?;
                let hoist_flag: u8 = parse_num(
                    kv(toks.next().unwrap_or(""), "hoistable", line)?,
                    line,
                    "hoistable flag",
                )?;
                let pattern = match toks.next() {
                    Some("affine") => Pattern::Affine {
                        base: parse_num(toks.next().unwrap_or(""), line, "base")?,
                        stride: parse_num(toks.next().unwrap_or(""), line, "stride")?,
                    },
                    Some("indirect") => {
                        let iord: usize =
                            parse_num(toks.next().unwrap_or(""), line, "index ordinal")?;
                        Pattern::Indirect {
                            index: *ids
                                .get(iord)
                                .ok_or_else(|| err(line, "indirect index ordinal out of range"))?,
                            ibase: parse_num(toks.next().unwrap_or(""), line, "ibase")?,
                            istride: parse_num(toks.next().unwrap_or(""), line, "istride")?,
                        }
                    }
                    other => return Err(err(line, format!("unknown pattern {other:?}"))),
                };
                spec.refs.push(StreamRef {
                    name: Box::leak(format!("ref{}", spec.refs.len()).into_boxed_str()),
                    array,
                    pattern,
                    mode,
                    bytes,
                    hoistable: hoist_flag != 0,
                });
            }
            Some(other) => return Err(err(line, format!("unknown directive '{other}'"))),
            None => unreachable!("blank lines are skipped"),
        }
    }
    let w = Workload {
        space,
        index,
        loops,
    };
    if w.loops.is_empty() {
        return Err(err(0, "workload has no loops"));
    }
    // A parsed file is user input: contradictions inside a loop spec are
    // malformed input, not programming errors, so they come back as typed
    // [`FormatError`]s instead of panicking like [`LoopSpec::validate`].
    for l in &w.loops {
        if let Some(d) = l
            .try_validate()
            .into_iter()
            .find(|d| d.severity == crate::diag::Severity::Error)
        {
            return Err(err(0, format!("[{:?}] {}", d.code, d.message)));
        }
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Workload {
        let mut space = AddressSpace::new();
        let x = space.alloc_aligned("x", 8, 100, 1 << 20);
        let a = space.alloc("a", 8, 100);
        let ij = space.alloc("ij", 4, 100);
        let mut index = IndexStore::new();
        index.set(ij, (0..100u32).rev().collect());
        let spec = LoopSpec {
            name: "sample gather".into(),
            iters: 100,
            refs: vec![
                StreamRef {
                    name: "a(i)",
                    array: a,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: true,
                },
                StreamRef {
                    name: "x(ij(i))",
                    array: x,
                    pattern: Pattern::Indirect {
                        index: ij,
                        ibase: 0,
                        istride: 1,
                    },
                    mode: Mode::Modify,
                    bytes: 8,
                    hoistable: false,
                },
            ],
            compute: 5.0,
            hoistable_compute: 2.0,
            hoist_result_bytes: 8,
        };
        Workload {
            space,
            index,
            loops: vec![spec],
        }
    }

    #[test]
    fn round_trip_preserves_everything_that_matters() {
        let w = sample();
        let text = to_text(&w);
        let back = from_text(&text).unwrap();
        assert_eq!(back.loops.len(), 1);
        let (s0, s1) = (&w.loops[0], &back.loops[0]);
        assert_eq!(s0.iters, s1.iters);
        assert_eq!(s0.compute, s1.compute);
        assert_eq!(s0.hoistable_compute, s1.hoistable_compute);
        assert_eq!(s0.refs.len(), s1.refs.len());
        for (r0, r1) in s0.refs.iter().zip(&s1.refs) {
            assert_eq!(r0.pattern, r1.pattern);
            assert_eq!(r0.mode, r1.mode);
            assert_eq!(r0.bytes, r1.bytes);
            assert_eq!(r0.hoistable, r1.hoistable);
        }
        // Array placement preserved (bases equal => same conflict behaviour).
        for ((_, d0), (_, d1)) in w.space.iter().zip(back.space.iter()) {
            assert_eq!(d0.base, d1.base, "array {} moved", d0.name);
            assert_eq!(d0.elem, d1.elem);
            assert_eq!(d0.len, d1.len);
        }
        // Index contents preserved.
        let ij0 = w.space.iter().find(|(_, d)| d.name == "ij").unwrap().0;
        let ij1 = back.space.iter().find(|(_, d)| d.name == "ij").unwrap().0;
        for i in 0..100 {
            assert_eq!(w.index.get(ij0, i), back.index.get(ij1, i));
        }
    }

    #[test]
    fn header_is_mandatory() {
        assert!(from_text("array a elem=8 len=4 align=64\n").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = format!("{HEADER}\narray a elem=8 len=4 align=64\nbogus directive\n");
        let e = from_text(&text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn ref_before_loop_is_rejected() {
        let text = format!("{HEADER}\narray a elem=8 len=4 align=64\nref 0 mode=r bytes=8 hoistable=0 affine 0 1\n");
        let e = from_text(&text).unwrap_err();
        assert!(e.message.contains("before any loop"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let w = sample();
        let mut text = to_text(&w);
        text.push_str("\n# trailing comment\n\n");
        assert!(from_text(&text).is_ok());
    }

    #[test]
    fn malformed_loops_are_typed_errors_not_panics() {
        // An empty loop and a memory-less loop both violate LoopSpec
        // invariants; a hand-edited file must get a FormatError back,
        // never a panic out of validate().
        let empty = format!(
            "{HEADER}\narray a elem=8 len=4 align=64\n\
             loop 0 compute=1 hoistable=0 hoist_bytes=0 name=empty\n\
             ref 0 mode=r bytes=8 hoistable=0 affine 0 1\n"
        );
        let e = from_text(&empty).unwrap_err();
        assert!(e.message.contains("empty loop"), "{e}");
        let no_refs = format!(
            "{HEADER}\narray a elem=8 len=4 align=64\n\
             loop 4 compute=1 hoistable=0 hoist_bytes=0 name=memoryless\n"
        );
        let e = from_text(&no_refs).unwrap_err();
        assert!(e.message.contains("touches no memory"), "{e}");
    }

    #[test]
    fn hoistable_write_is_a_typed_error() {
        let text = format!(
            "{HEADER}\narray a elem=8 len=4 align=64\n\
             loop 4 compute=1 hoistable=0 hoist_bytes=8 name=bad-hoist\n\
             ref 0 mode=w bytes=8 hoistable=1 affine 0 1\n"
        );
        let e = from_text(&text).unwrap_err();
        assert!(e.message.contains("read-only"), "{e}");
    }

    #[test]
    fn out_of_range_ordinals_are_rejected() {
        let text = format!(
            "{HEADER}\narray a elem=8 len=4 align=64\nloop 4 compute=1 hoistable=0 hoist_bytes=0 name=t\nref 7 mode=r bytes=8 hoistable=0 affine 0 1\n"
        );
        let e = from_text(&text).unwrap_err();
        assert!(e.message.contains("out of range"));
    }
}

//! Address resolution: turning a [`crate::spec::LoopSpec`] plus an iteration number into
//! the concrete simulated addresses it touches.
//!
//! The resolver is the single source of truth for "what does iteration `i`
//! of this loop reference" — the sequential baseline, the cascaded
//! execution phases, the prefetch helper and the restructuring packer in
//! `cascade-core` all go through it, so they can never disagree about the
//! reference stream.

use cascade_mem::StreamClass;

use crate::space::{AddressSpace, IndexStore};
use crate::spec::{Pattern, StreamRef, INDEX_BYTES};

/// A resolved memory reference (address + width + predictability class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Simulated byte address.
    pub addr: u64,
    /// Width in bytes.
    pub bytes: u32,
    /// Predictability class for the latency-overlap model.
    pub class: StreamClass,
}

/// Resolves patterns against an address space and index contents.
#[derive(Clone, Copy)]
pub struct Resolver<'a> {
    /// Array placement.
    pub space: &'a AddressSpace,
    /// Index-array contents.
    pub index: &'a IndexStore,
}

impl<'a> Resolver<'a> {
    /// Create a resolver over the given space and index store.
    pub fn new(space: &'a AddressSpace, index: &'a IndexStore) -> Self {
        Resolver { space, index }
    }

    /// Element index referenced by `pattern` at iteration `i`.
    pub fn elem_index(&self, pattern: &Pattern, i: u64) -> u64 {
        match *pattern {
            Pattern::Affine { base, stride } => {
                let idx = base + stride * i as i64;
                debug_assert!(idx >= 0, "negative element index {idx} at iteration {i}");
                idx as u64
            }
            Pattern::Indirect {
                index,
                ibase,
                istride,
            } => {
                let ii = ibase + istride * i as i64;
                debug_assert!(
                    ii >= 0,
                    "negative index-array position {ii} at iteration {i}"
                );
                self.index.get(index, ii as u64) as u64
            }
        }
    }

    /// The read of the index-array element itself, for indirect streams
    /// (`None` for affine streams). Index arrays are walked affinely, so
    /// this access is always predictable.
    pub fn index_access(&self, r: &StreamRef, i: u64) -> Option<DataAccess> {
        match r.pattern {
            Pattern::Affine { .. } => None,
            Pattern::Indirect {
                index,
                ibase,
                istride,
            } => {
                let ii = ibase + istride * i as i64;
                debug_assert!(
                    ii >= 0,
                    "negative index-array position {ii} at iteration {i}"
                );
                Some(DataAccess {
                    addr: self.space.addr(index, ii as u64),
                    bytes: INDEX_BYTES,
                    class: StreamClass::Affine,
                })
            }
        }
    }

    /// The data access of stream `r` at iteration `i`.
    pub fn data_access(&self, r: &StreamRef, i: u64) -> DataAccess {
        let elem = self.elem_index(&r.pattern, i);
        DataAccess {
            addr: self.space.addr(r.array, elem),
            bytes: r.bytes,
            class: if r.pattern.is_affine() {
                StreamClass::Affine
            } else {
                StreamClass::Indirect
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Mode;

    fn setup() -> (AddressSpace, IndexStore) {
        let mut s = AddressSpace::new();
        let _x = s.alloc("x", 8, 100);
        let ij = s.alloc("ij", 4, 100);
        let mut idx = IndexStore::new();
        idx.set(ij, (0..100u32).map(|i| (i * 7) % 100).collect());
        (s, idx)
    }

    #[test]
    fn affine_resolution_walks_strides() {
        let (s, idx) = setup();
        let r = Resolver::new(&s, &idx);
        let p = Pattern::Affine { base: 5, stride: 3 };
        assert_eq!(r.elem_index(&p, 0), 5);
        assert_eq!(r.elem_index(&p, 4), 17);
    }

    #[test]
    fn indirect_resolution_reads_index_contents() {
        let (s, idx) = setup();
        let r = Resolver::new(&s, &idx);
        let ij = crate::space::ArrayId(1);
        let p = Pattern::Indirect {
            index: ij,
            ibase: 0,
            istride: 1,
        };
        assert_eq!(r.elem_index(&p, 3), 21); // (3*7) % 100
    }

    #[test]
    fn data_access_classifies_predictability() {
        let (s, idx) = setup();
        let r = Resolver::new(&s, &idx);
        let x = crate::space::ArrayId(0);
        let ij = crate::space::ArrayId(1);
        let affine = StreamRef {
            name: "x(i)",
            array: x,
            pattern: Pattern::Affine { base: 0, stride: 1 },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        let gather = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: 8,
            hoistable: false,
        };
        assert_eq!(r.data_access(&affine, 2).class, StreamClass::Affine);
        assert_eq!(r.data_access(&gather, 2).class, StreamClass::Indirect);
        assert!(r.index_access(&affine, 2).is_none());
        let ia = r.index_access(&gather, 2).unwrap();
        assert_eq!(ia.class, StreamClass::Affine);
        assert_eq!(ia.bytes, INDEX_BYTES);
        assert_eq!(ia.addr, s.addr(ij, 2));
    }

    #[test]
    fn gather_address_follows_index_value() {
        let (s, idx) = setup();
        let r = Resolver::new(&s, &idx);
        let x = crate::space::ArrayId(0);
        let ij = crate::space::ArrayId(1);
        let gather = StreamRef {
            name: "x(ij(i))",
            array: x,
            pattern: Pattern::Indirect {
                index: ij,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Modify,
            bytes: 8,
            hoistable: false,
        };
        let a = r.data_access(&gather, 5);
        assert_eq!(a.addr, s.addr(x, 35)); // ij[5] = 35
    }
}

//! # cascade-trace — workload description layer
//!
//! Substrate crate of the *Cascaded Execution* (IPPS 1999) reproduction.
//! It defines the machine-independent vocabulary in which workloads (the
//! synthetic wave5 PARMVR in `cascade-wave5`, the §3.4 synthetic loop in
//! `cascade-synth`) describe themselves to the cascade engine:
//!
//! * [`space::AddressSpace`] — simulated arrays, bump-allocated with
//!   explicit alignment (the knob that creates or avoids conflict misses);
//! * [`space::IndexStore`] — contents of index arrays for gathers/scatters;
//! * [`spec::LoopSpec`] — one unparallelized loop: reference streams
//!   ([`spec::StreamRef`]), per-iteration compute, read-only/hoistable
//!   marking, and the derived byte-per-iteration estimates that drive chunk
//!   sizing and sequential-buffer layout;
//! * [`stream::Resolver`] — the single authority mapping (stream,
//!   iteration) to simulated addresses.

#![warn(missing_docs)]

pub mod analyze;
pub mod arena;
pub mod diag;
pub mod space;
pub mod spec;
pub mod stream;
pub mod textfmt;
pub mod workload;

pub use analyze::{reuse_distances, stride_histogram, ReuseProfile, TraceRef};
pub use arena::{Arena, ArenaError};
pub use diag::{DiagCode, Diagnostic, Severity};
pub use space::{AddressSpace, ArrayDef, ArrayId, IndexStore};
pub use spec::{LoopSpec, Mode, Pattern, StreamRef, INDEX_BYTES};
pub use stream::{DataAccess, Resolver};
pub use textfmt::{from_text, to_text, FormatError};
pub use workload::Workload;

//! The simulated address space: named arrays bump-allocated from address
//! zero, with explicit alignment control.
//!
//! Alignment matters because cache *conflict* misses — the effect the
//! paper's restructuring policy eliminates — are an artifact of address
//! placement: two arrays whose base addresses differ by a multiple of a
//! cache's way size contend for the same sets. The wave5 workload uses
//! `alloc_aligned` to place a few arrays at large power-of-two boundaries
//! (as Fortran common blocks routinely end up), making some loops
//! conflict-prone and others not, exactly as in the paper's Figure 3 where
//! per-loop results range from 0.9x to 4.5x.

/// Identifier of an allocated array (index into the space's array table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// Metadata of one allocated array.
#[derive(Debug, Clone)]
pub struct ArrayDef {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Base byte address.
    pub base: u64,
    /// Element size in bytes.
    pub elem: u32,
    /// Number of elements.
    pub len: u64,
}

impl ArrayDef {
    /// Total footprint in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.elem as u64 * self.len
    }

    /// Byte address of element `i` (debug-asserted in range).
    #[inline]
    pub fn addr(&self, i: u64) -> u64 {
        debug_assert!(
            i < self.len,
            "index {i} out of bounds for {} (len {})",
            self.name,
            self.len
        );
        self.base + i * self.elem as u64
    }
}

/// A bump allocator of simulated arrays.
#[derive(Debug, Default, Clone)]
pub struct AddressSpace {
    arrays: Vec<ArrayDef>,
    next: u64,
}

impl AddressSpace {
    /// An empty space starting at address 0.
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// Allocate `len` elements of `elem` bytes each, cache-line (64B)
    /// aligned — the "natural", conflict-agnostic placement.
    pub fn alloc(&mut self, name: &str, elem: u32, len: u64) -> ArrayId {
        self.alloc_aligned(name, elem, len, 64)
    }

    /// Allocate with an explicit power-of-two base alignment. Large
    /// alignments (e.g. a cache way size) deliberately provoke conflicts
    /// between arrays sharing that alignment.
    pub fn alloc_aligned(&mut self, name: &str, elem: u32, len: u64, align: u64) -> ArrayId {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(elem > 0 && len > 0, "arrays must be non-empty");
        let base = (self.next + align - 1) & !(align - 1);
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDef {
            name: name.to_string(),
            base,
            elem,
            len,
        });
        self.next = base + elem as u64 * len;
        id
    }

    /// Metadata of an array.
    #[inline]
    pub fn array(&self, id: ArrayId) -> &ArrayDef {
        &self.arrays[id.0 as usize]
    }

    /// Byte address of element `i` of array `id`.
    #[inline]
    pub fn addr(&self, id: ArrayId, i: u64) -> u64 {
        self.array(id).addr(i)
    }

    /// One-past-the-end of all allocations (the footprint of the space).
    #[inline]
    pub fn extent(&self) -> u64 {
        self.next
    }

    /// Number of arrays allocated.
    #[inline]
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// True when nothing has been allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Iterate over all arrays in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (ArrayId, &ArrayDef)> {
        self.arrays
            .iter()
            .enumerate()
            .map(|(i, d)| (ArrayId(i as u32), d))
    }
}

/// Contents of index arrays (the `IJ` of the paper's synthetic loop and the
/// particle-to-cell maps of wave5). Only arrays used by
/// [`crate::spec::Pattern::Indirect`] need entries here; the values *are*
/// the simulated data — the addresses a gather or scatter touches.
#[derive(Debug, Default, Clone)]
pub struct IndexStore {
    tables: Vec<Option<Vec<u32>>>,
}

impl IndexStore {
    /// Empty store.
    pub fn new() -> Self {
        IndexStore::default()
    }

    /// Install the contents of index array `id`.
    pub fn set(&mut self, id: ArrayId, values: Vec<u32>) {
        let idx = id.0 as usize;
        if idx >= self.tables.len() {
            self.tables.resize(idx + 1, None);
        }
        self.tables[idx] = Some(values);
    }

    /// Look up element `i` of index array `id`. Panics (with the array id)
    /// if the array has no installed contents — that is a workload bug.
    #[inline]
    pub fn get(&self, id: ArrayId, i: u64) -> u32 {
        let table = self
            .tables
            .get(id.0 as usize)
            .and_then(|t| t.as_ref())
            .unwrap_or_else(|| panic!("index array {id:?} has no contents installed"));
        table[i as usize]
    }

    /// Whether contents are installed for `id`.
    pub fn contains(&self, id: ArrayId) -> bool {
        matches!(self.tables.get(id.0 as usize), Some(Some(_)))
    }

    /// Number of installed elements for `id`, or `None` when the array has
    /// no contents. Lets analyses bound index scans without risking the
    /// panic in [`IndexStore::get`].
    pub fn len_of(&self, id: ArrayId) -> Option<usize> {
        self.tables
            .get(id.0 as usize)
            .and_then(|t| t.as_ref())
            .map(|t| t.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_disjoint_and_ordered() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 100);
        let b = s.alloc("b", 4, 50);
        let (ad, bd) = (s.array(a), s.array(b));
        assert!(ad.base + ad.bytes() <= bd.base, "arrays must not overlap");
        assert_eq!(s.extent(), bd.base + bd.bytes());
    }

    #[test]
    fn aligned_allocation_lands_on_boundary() {
        let mut s = AddressSpace::new();
        s.alloc("pad", 1, 100);
        let a = s.alloc_aligned("aligned", 8, 10, 1 << 20);
        assert_eq!(s.array(a).base % (1 << 20), 0);
    }

    #[test]
    fn element_addressing() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 100);
        let base = s.array(a).base;
        assert_eq!(s.addr(a, 0), base);
        assert_eq!(s.addr(a, 7), base + 56);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn out_of_bounds_addressing_panics_in_debug() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 8, 10);
        let _ = s.addr(a, 10);
    }

    #[test]
    fn two_arrays_at_same_large_alignment_alias_in_a_way() {
        // This is the conflict mechanism: equal residues modulo way size.
        let mut s = AddressSpace::new();
        let way = 128 * 1024u64; // Pentium Pro L2 way size
        let a = s.alloc_aligned("a", 8, 1000, way);
        let b = s.alloc_aligned("b", 8, 1000, way);
        assert_eq!(s.array(a).base % way, s.array(b).base % way);
    }

    #[test]
    fn index_store_roundtrip() {
        let mut s = AddressSpace::new();
        let ij = s.alloc("ij", 4, 4);
        let mut idx = IndexStore::new();
        assert!(!idx.contains(ij));
        idx.set(ij, vec![3, 1, 4, 1]);
        assert!(idx.contains(ij));
        assert_eq!(idx.get(ij, 2), 4);
    }

    #[test]
    #[should_panic(expected = "no contents")]
    fn missing_index_contents_panics() {
        let mut s = AddressSpace::new();
        let ij = s.alloc("ij", 4, 4);
        IndexStore::new().get(ij, 0);
    }
}

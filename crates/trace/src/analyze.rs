//! Reference-stream analysis: reuse (LRU stack) distances, working sets
//! and stride statistics.
//!
//! These are the standard analytic tools for *explaining* cache behaviour
//! rather than simulating it: an access whose reuse distance (number of
//! distinct lines touched since its last use) exceeds a fully-associative
//! LRU cache's capacity is a guaranteed miss in that cache, independent
//! of geometry details. The `extra_reuse_profile` experiment uses this to
//! show, stream-theoretically, why the paper's sequential buffer wins:
//! restructuring collapses a gather's unbounded reuse distances into a
//! compulsory-only profile.

use std::collections::HashMap;

/// One resolved reference of a trace (line-granular analysis is applied
/// on top via [`reuse_distances`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRef {
    /// Byte address.
    pub addr: u64,
    /// Access width.
    pub bytes: u32,
}

/// A Fenwick (binary indexed) tree over access positions, used to count
/// distinct lines between uses in O(log n).
struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i64) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of [0, i].
    fn prefix(&self, mut i: usize) -> i64 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Reuse-distance profile of a line-granular access stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseProfile {
    /// One distance per access: `None` for first touches (compulsory),
    /// otherwise the number of distinct lines touched since the previous
    /// access to the same line.
    pub distances: Vec<Option<u64>>,
    /// Number of distinct lines in the stream.
    pub working_set_lines: usize,
}

impl ReuseProfile {
    /// Number of compulsory (first-touch) accesses.
    pub fn compulsory(&self) -> usize {
        self.distances.iter().filter(|d| d.is_none()).count()
    }

    /// Predicted miss count in a fully-associative LRU cache of
    /// `capacity_lines` lines: first touches plus reuses whose distance
    /// is at least the capacity.
    pub fn misses_at_capacity(&self, capacity_lines: u64) -> usize {
        self.distances
            .iter()
            .filter(|d| match d {
                None => true,
                Some(dist) => *dist >= capacity_lines,
            })
            .count()
    }

    /// Mean reuse distance over non-compulsory accesses (`None` if all
    /// accesses are first touches).
    pub fn mean_distance(&self) -> Option<f64> {
        let reused: Vec<u64> = self.distances.iter().filter_map(|d| *d).collect();
        if reused.is_empty() {
            None
        } else {
            Some(reused.iter().sum::<u64>() as f64 / reused.len() as f64)
        }
    }
}

/// Compute the LRU stack-distance profile of `refs` at `line`-byte
/// granularity (an access spanning several lines contributes one stream
/// element per line).
pub fn reuse_distances(refs: &[TraceRef], line: u64) -> ReuseProfile {
    assert!(line.is_power_of_two(), "line size must be a power of two");
    // Expand to line accesses.
    let mut lines = Vec::with_capacity(refs.len());
    for r in refs {
        let first = r.addr / line;
        let last = (r.addr + r.bytes.max(1) as u64 - 1) / line;
        for l in first..=last {
            lines.push(l);
        }
    }

    // Classic stack-distance algorithm: Fenwick over positions, marking
    // each line's most recent position; the distance of a reuse is the
    // number of marked positions after the previous use.
    let n = lines.len();
    let mut fen = Fenwick::new(n);
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    let mut distances = Vec::with_capacity(n);
    for (i, &l) in lines.iter().enumerate() {
        match last_pos.get(&l) {
            None => distances.push(None),
            Some(&p) => {
                // Distinct lines touched strictly after p and before i =
                // marked positions in (p, i). Marked positions are each
                // line's most recent use, so the count is exactly the
                // number of distinct other lines.
                let between = fen.prefix(i.saturating_sub(1)) - fen.prefix(p);
                distances.push(Some(between as u64));
            }
        }
        if let Some(&p) = last_pos.get(&l) {
            fen.add(p, -1);
        }
        fen.add(i, 1);
        last_pos.insert(l, i);
    }
    ReuseProfile {
        distances,
        working_set_lines: last_pos.len(),
    }
}

/// Histogram of address deltas between consecutive accesses (stride
/// detection): returns (stride, count) sorted by descending count.
pub fn stride_histogram(refs: &[TraceRef]) -> Vec<(i64, usize)> {
    let mut hist: HashMap<i64, usize> = HashMap::new();
    for w in refs.windows(2) {
        let d = w[1].addr as i64 - w[0].addr as i64;
        *hist.entry(d).or_insert(0) += 1;
    }
    let mut v: Vec<(i64, usize)> = hist.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(addr: u64) -> TraceRef {
        TraceRef { addr, bytes: 8 }
    }

    #[test]
    fn sequential_stream_is_all_compulsory_per_line() {
        // 32 8-byte refs over 32-byte lines: 8 lines, each first-touched
        // once then reused with distance 0 (no other lines between).
        let refs: Vec<TraceRef> = (0..32).map(|i| r(i * 8)).collect();
        let p = reuse_distances(&refs, 32);
        assert_eq!(p.working_set_lines, 8);
        assert_eq!(p.compulsory(), 8);
        assert!(p.distances.iter().flatten().all(|&d| d == 0));
        // Any cache with >= 1 line captures all reuse.
        assert_eq!(p.misses_at_capacity(1), 8);
    }

    #[test]
    fn cyclic_sweep_distance_equals_working_set() {
        // Touch lines 0..4 twice: each reuse sees the other 3 lines.
        let refs: Vec<TraceRef> = (0..8).map(|i| r((i % 4) * 32)).collect();
        let p = reuse_distances(&refs, 32);
        assert_eq!(p.compulsory(), 4);
        assert!(p.distances[4..].iter().flatten().all(|&d| d == 3));
        // A 4-line cache holds the loop; a 3-line cache misses everything.
        assert_eq!(p.misses_at_capacity(4), 4);
        assert_eq!(p.misses_at_capacity(3), 8);
    }

    #[test]
    fn stack_distance_predicts_lru_exactly() {
        // Cross-check against a brute-force LRU simulation for a random-
        // ish stream: predicted misses at capacity C must equal an
        // LRU-of-C simulation's misses.
        let refs: Vec<TraceRef> = (0..500u64).map(|i| r(((i * 7919) % 60) * 32)).collect();
        let p = reuse_distances(&refs, 32);
        for cap in [1usize, 4, 16, 50, 64] {
            let mut lru: Vec<u64> = Vec::new();
            let mut misses = 0;
            for a in &refs {
                let l = a.addr / 32;
                if let Some(pos) = lru.iter().position(|&x| x == l) {
                    lru.remove(pos);
                } else {
                    misses += 1;
                    if lru.len() == cap {
                        lru.remove(0);
                    }
                }
                lru.push(l);
            }
            assert_eq!(
                p.misses_at_capacity(cap as u64),
                misses,
                "capacity {cap}: stack distances must predict LRU exactly"
            );
        }
    }

    #[test]
    fn multi_line_access_counts_every_line() {
        let refs = [TraceRef { addr: 0, bytes: 64 }];
        let p = reuse_distances(&refs, 32);
        assert_eq!(p.working_set_lines, 2);
        assert_eq!(p.compulsory(), 2);
    }

    #[test]
    fn stride_histogram_finds_the_dominant_stride() {
        let refs: Vec<TraceRef> = (0..100).map(|i| r(i * 24)).collect();
        let h = stride_histogram(&refs);
        assert_eq!(h[0], (24, 99));
    }

    #[test]
    fn mean_distance_none_for_pure_compulsory() {
        let refs: Vec<TraceRef> = (0..8).map(|i| r(i * 64)).collect();
        let p = reuse_distances(&refs, 32);
        assert_eq!(p.mean_distance(), None);
    }
}

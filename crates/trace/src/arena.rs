//! Real backing storage for a simulated address space.
//!
//! An [`Arena`] is a flat byte buffer whose layout mirrors an
//! [`AddressSpace`] exactly: element `i` of array `a` lives at byte offset
//! `space.addr(a, i)`. This lets the real-thread runtime (`cascade-rt`)
//! execute the *same* workload descriptions the simulator models — same
//! arrays, same indices, same reference streams — against real memory, and
//! lets tests compare cascaded and sequential executions bitwise.

use crate::space::{AddressSpace, ArrayId, IndexStore};

/// Typed rejection of raw bytes that cannot back an address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArenaError {
    /// The byte buffer's length does not equal the space's extent, so
    /// element addresses would read out of bounds (or alias the wrong
    /// array). Carries both sides of the mismatch for the error report.
    SizeMismatch {
        /// Bytes the address space requires ([`AddressSpace::extent`]).
        expected: u64,
        /// Bytes actually supplied.
        got: usize,
    },
}

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaError::SizeMismatch { expected, got } => write!(
                f,
                "arena snapshot is {got} bytes, address space needs {expected}"
            ),
        }
    }
}
impl std::error::Error for ArenaError {}

/// Flat storage backing every array of an address space.
#[derive(Debug, Clone, PartialEq)]
pub struct Arena {
    bytes: Vec<u8>,
}

impl Arena {
    /// Allocate zeroed storage covering the whole space.
    pub fn new(space: &AddressSpace) -> Self {
        Arena {
            bytes: vec![0u8; space.extent() as usize],
        }
    }

    /// Size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the arena is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Rebuild an arena from previously captured raw bytes (the inverse of
    /// [`Arena::bytes`]). Callers restoring persisted state must validate
    /// the length against the target address space's extent before handing
    /// the arena to an interpreter — or use [`Arena::try_from_bytes`],
    /// which does it for them.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Arena { bytes }
    }

    /// Rebuild an arena from captured raw bytes, rejecting a buffer whose
    /// length does not match `space` with a typed [`ArenaError`] instead
    /// of deferring the failure to a later out-of-bounds element access.
    pub fn try_from_bytes(space: &AddressSpace, bytes: Vec<u8>) -> Result<Self, ArenaError> {
        let expected = space.extent();
        if bytes.len() as u64 != expected {
            return Err(ArenaError::SizeMismatch {
                expected,
                got: bytes.len(),
            });
        }
        Ok(Arena { bytes })
    }

    /// Copy the 8-byte word at `off` out of the arena (bounds-checked by
    /// the slice; the fixed-size copy itself cannot fail).
    #[inline]
    fn word8(&self, off: usize) -> [u8; 8] {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.bytes[off..off + 8]);
        b
    }

    /// Raw bytes (for checksumming / bitwise comparison).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Base pointer of the arena (for the real-thread runtime).
    #[inline]
    pub fn as_ptr(&self) -> *const u8 {
        self.bytes.as_ptr()
    }

    /// Read an `f64` element of `array`.
    #[inline]
    pub fn get_f64(&self, space: &AddressSpace, array: ArrayId, i: u64) -> f64 {
        debug_assert_eq!(space.array(array).elem, 8, "get_f64 on non-8-byte array");
        let off = space.addr(array, i) as usize;
        f64::from_le_bytes(self.word8(off))
    }

    /// Write an `f64` element of `array`.
    #[inline]
    pub fn set_f64(&mut self, space: &AddressSpace, array: ArrayId, i: u64, v: f64) {
        debug_assert_eq!(space.array(array).elem, 8, "set_f64 on non-8-byte array");
        let off = space.addr(array, i) as usize;
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u32` element of `array`.
    #[inline]
    pub fn get_u32(&self, space: &AddressSpace, array: ArrayId, i: u64) -> u32 {
        debug_assert_eq!(space.array(array).elem, 4, "get_u32 on non-4-byte array");
        let off = space.addr(array, i) as usize;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.bytes[off..off + 4]);
        u32::from_le_bytes(b)
    }

    /// Write a `u32` element of `array`.
    #[inline]
    pub fn set_u32(&mut self, space: &AddressSpace, array: ArrayId, i: u64, v: u32) {
        debug_assert_eq!(space.array(array).elem, 4, "set_u32 on non-4-byte array");
        let off = space.addr(array, i) as usize;
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Copy the contents of every index array in `index` into the arena, so
    /// that real execution reads the same indices the simulator resolved.
    pub fn install_indices(&mut self, space: &AddressSpace, index: &IndexStore) {
        for (id, def) in space.iter() {
            if !index.contains(id) {
                continue;
            }
            assert_eq!(def.elem, 4, "index array {} must hold u32", def.name);
            for i in 0..def.len {
                let v = index.get(id, i);
                self.set_u32(space, id, i, v);
            }
        }
    }

    /// Order-insensitive checksum of the arena contents (wrapping sum of
    /// 8-byte words plus length), for cheap equality assertions in tests
    /// and examples.
    pub fn checksum(&self) -> u64 {
        let mut sum = self.bytes.len() as u64;
        let mut chunks = self.bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            sum = sum.wrapping_add(u64::from_le_bytes(b));
        }
        for &b in chunks.remainder() {
            sum = sum.wrapping_add(b as u64);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64_and_u32() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 10);
        let j = space.alloc("j", 4, 10);
        let mut ar = Arena::new(&space);
        ar.set_f64(&space, a, 3, 2.5);
        ar.set_u32(&space, j, 7, 42);
        assert_eq!(ar.get_f64(&space, a, 3), 2.5);
        assert_eq!(ar.get_u32(&space, j, 7), 42);
        assert_eq!(ar.get_f64(&space, a, 0), 0.0, "untouched storage is zeroed");
    }

    #[test]
    fn layout_matches_address_space() {
        let mut space = AddressSpace::new();
        let _pad = space.alloc("pad", 1, 13);
        let a = space.alloc_aligned("a", 8, 4, 256);
        let ar = {
            let mut ar = Arena::new(&space);
            ar.set_f64(&space, a, 0, 1.0);
            ar
        };
        let off = space.addr(a, 0) as usize;
        assert_eq!(off % 256, 0);
        assert_eq!(
            f64::from_le_bytes(ar.bytes()[off..off + 8].try_into().unwrap()),
            1.0
        );
    }

    #[test]
    fn install_indices_copies_contents() {
        let mut space = AddressSpace::new();
        let ij = space.alloc("ij", 4, 5);
        let mut index = IndexStore::new();
        index.set(ij, vec![4, 3, 2, 1, 0]);
        let mut ar = Arena::new(&space);
        ar.install_indices(&space, &index);
        for i in 0..5 {
            assert_eq!(ar.get_u32(&space, ij, i), index.get(ij, i));
        }
    }

    #[test]
    fn try_from_bytes_rejects_length_mismatches() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 8);
        let ok = Arena::try_from_bytes(&space, vec![0u8; space.extent() as usize]).unwrap();
        assert_eq!(ok.get_f64(&space, a, 0), 0.0);
        let err = Arena::try_from_bytes(&space, vec![0u8; 3]).unwrap_err();
        match err {
            ArenaError::SizeMismatch { expected, got } => {
                assert_eq!(expected, space.extent());
                assert_eq!(got, 3);
            }
        }
        assert!(err.to_string().contains("3 bytes"), "{err}");
    }

    #[test]
    fn checksum_detects_changes() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 100);
        let mut ar = Arena::new(&space);
        let c0 = ar.checksum();
        ar.set_f64(&space, a, 50, 1.0);
        assert_ne!(ar.checksum(), c0);
    }
}

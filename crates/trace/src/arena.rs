//! Real backing storage for a simulated address space.
//!
//! An [`Arena`] is a flat byte buffer whose layout mirrors an
//! [`AddressSpace`] exactly: element `i` of array `a` lives at byte offset
//! `space.addr(a, i)`. This lets the real-thread runtime (`cascade-rt`)
//! execute the *same* workload descriptions the simulator models — same
//! arrays, same indices, same reference streams — against real memory, and
//! lets tests compare cascaded and sequential executions bitwise.

use crate::space::{AddressSpace, ArrayId, IndexStore};

/// Flat storage backing every array of an address space.
#[derive(Debug, Clone, PartialEq)]
pub struct Arena {
    bytes: Vec<u8>,
}

impl Arena {
    /// Allocate zeroed storage covering the whole space.
    pub fn new(space: &AddressSpace) -> Self {
        Arena {
            bytes: vec![0u8; space.extent() as usize],
        }
    }

    /// Size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the arena is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Rebuild an arena from previously captured raw bytes (the inverse of
    /// [`Arena::bytes`]). Callers restoring persisted state must validate
    /// the length against the target address space's extent before handing
    /// the arena to an interpreter.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Arena { bytes }
    }

    /// Raw bytes (for checksumming / bitwise comparison).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Base pointer of the arena (for the real-thread runtime).
    #[inline]
    pub fn as_ptr(&self) -> *const u8 {
        self.bytes.as_ptr()
    }

    /// Read an `f64` element of `array`.
    #[inline]
    pub fn get_f64(&self, space: &AddressSpace, array: ArrayId, i: u64) -> f64 {
        debug_assert_eq!(space.array(array).elem, 8, "get_f64 on non-8-byte array");
        let off = space.addr(array, i) as usize;
        f64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Write an `f64` element of `array`.
    #[inline]
    pub fn set_f64(&mut self, space: &AddressSpace, array: ArrayId, i: u64, v: f64) {
        debug_assert_eq!(space.array(array).elem, 8, "set_f64 on non-8-byte array");
        let off = space.addr(array, i) as usize;
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u32` element of `array`.
    #[inline]
    pub fn get_u32(&self, space: &AddressSpace, array: ArrayId, i: u64) -> u32 {
        debug_assert_eq!(space.array(array).elem, 4, "get_u32 on non-4-byte array");
        let off = space.addr(array, i) as usize;
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Write a `u32` element of `array`.
    #[inline]
    pub fn set_u32(&mut self, space: &AddressSpace, array: ArrayId, i: u64, v: u32) {
        debug_assert_eq!(space.array(array).elem, 4, "set_u32 on non-4-byte array");
        let off = space.addr(array, i) as usize;
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Copy the contents of every index array in `index` into the arena, so
    /// that real execution reads the same indices the simulator resolved.
    pub fn install_indices(&mut self, space: &AddressSpace, index: &IndexStore) {
        for (id, def) in space.iter() {
            if !index.contains(id) {
                continue;
            }
            assert_eq!(def.elem, 4, "index array {} must hold u32", def.name);
            for i in 0..def.len {
                let v = index.get(id, i);
                self.set_u32(space, id, i, v);
            }
        }
    }

    /// Order-insensitive checksum of the arena contents (wrapping sum of
    /// 8-byte words plus length), for cheap equality assertions in tests
    /// and examples.
    pub fn checksum(&self) -> u64 {
        let mut sum = self.bytes.len() as u64;
        let mut chunks = self.bytes.chunks_exact(8);
        for c in &mut chunks {
            sum = sum.wrapping_add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        for &b in chunks.remainder() {
            sum = sum.wrapping_add(b as u64);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64_and_u32() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 10);
        let j = space.alloc("j", 4, 10);
        let mut ar = Arena::new(&space);
        ar.set_f64(&space, a, 3, 2.5);
        ar.set_u32(&space, j, 7, 42);
        assert_eq!(ar.get_f64(&space, a, 3), 2.5);
        assert_eq!(ar.get_u32(&space, j, 7), 42);
        assert_eq!(ar.get_f64(&space, a, 0), 0.0, "untouched storage is zeroed");
    }

    #[test]
    fn layout_matches_address_space() {
        let mut space = AddressSpace::new();
        let _pad = space.alloc("pad", 1, 13);
        let a = space.alloc_aligned("a", 8, 4, 256);
        let ar = {
            let mut ar = Arena::new(&space);
            ar.set_f64(&space, a, 0, 1.0);
            ar
        };
        let off = space.addr(a, 0) as usize;
        assert_eq!(off % 256, 0);
        assert_eq!(
            f64::from_le_bytes(ar.bytes()[off..off + 8].try_into().unwrap()),
            1.0
        );
    }

    #[test]
    fn install_indices_copies_contents() {
        let mut space = AddressSpace::new();
        let ij = space.alloc("ij", 4, 5);
        let mut index = IndexStore::new();
        index.set(ij, vec![4, 3, 2, 1, 0]);
        let mut ar = Arena::new(&space);
        ar.install_indices(&space, &index);
        for i in 0..5 {
            assert_eq!(ar.get_u32(&space, ij, i), index.get(ij, i));
        }
    }

    #[test]
    fn checksum_detects_changes() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 100);
        let mut ar = Arena::new(&space);
        let c0 = ar.checksum();
        ar.set_f64(&space, a, 50, 1.0);
        assert_ne!(ar.checksum(), c0);
    }
}

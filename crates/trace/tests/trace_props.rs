//! Property tests of the workload-description layer.

use proptest::prelude::*;

use cascade_trace::{
    AddressSpace, Arena, IndexStore, LoopSpec, Mode, Pattern, Resolver, StreamRef,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Allocations never overlap and respect their alignment, regardless
    /// of the request sequence.
    #[test]
    fn allocations_are_disjoint_and_aligned(
        reqs in proptest::collection::vec(
            (1u32..16, 1u64..5000, 0u32..6), 1..30),
    ) {
        let mut space = AddressSpace::new();
        let mut ids = Vec::new();
        for (i, (elem, len, align_log)) in reqs.iter().enumerate() {
            let align = 1u64 << (6 + align_log); // 64B .. 2KB
            ids.push(space.alloc_aligned(&format!("a{i}"), *elem, *len, align));
            prop_assert_eq!(space.array(ids[i]).base % align, 0);
        }
        let mut ranges: Vec<(u64, u64)> = ids
            .iter()
            .map(|&id| {
                let d = space.array(id);
                (d.base, d.base + d.bytes())
            })
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "allocations overlap: {:?}", w);
        }
        prop_assert_eq!(space.extent(), ranges.last().unwrap().1);
    }

    /// The resolver maps every iteration of a valid spec to an in-bounds
    /// address within the referenced array.
    #[test]
    fn resolver_stays_in_bounds(
        len in 64u64..4096,
        base in 0i64..8,
        stride in 1i64..8,
        indirect in any::<bool>(),
    ) {
        let mut space = AddressSpace::new();
        let data = space.alloc("data", 8, len);
        let idx = space.alloc("idx", 4, len);
        let mut index = IndexStore::new();
        index.set(idx, (0..len).map(|i| ((i * 31) % len) as u32).collect());
        let iters = ((len as i64 - base - 1) / stride) as u64;
        prop_assume!(iters > 0);
        let pattern = if indirect {
            Pattern::Indirect { index: idx, ibase: base, istride: stride }
        } else {
            Pattern::Affine { base, stride }
        };
        let r = StreamRef { name: "d", array: data, pattern, mode: Mode::Read, bytes: 8, hoistable: false };
        let res = Resolver::new(&space, &index);
        let d = space.array(data);
        for i in 0..iters {
            let a = res.data_access(&r, i);
            prop_assert!(a.addr >= d.base && a.addr + 8 <= d.base + d.bytes(),
                "iteration {} escaped: {:x}", i, a.addr);
        }
    }

    /// Line-granular footprint estimates are monotone in stride, bounded
    /// below by the access width (capped at a line) and above by width +
    /// line, and packed bytes never exceed original bytes per iteration.
    #[test]
    fn footprint_estimates_are_sane(
        stride in 1i64..64,
        bytes in prop_oneof![Just(4u32), Just(8u32)],
        line in prop_oneof![Just(32u64), Just(64), Just(128)],
    ) {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", bytes, 1 << 20);
        let spec = |s: i64| LoopSpec {
            name: "t".into(),
            iters: 1024,
            refs: vec![StreamRef {
                name: "a",
                array: a,
                pattern: Pattern::Affine { base: 0, stride: s },
                mode: Mode::Read,
                bytes,
                hoistable: false,
            }],
            compute: 1.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        let f1 = spec(stride).line_footprint_per_iter(line);
        let f2 = spec(stride + 1).line_footprint_per_iter(line);
        prop_assert!(f2 >= f1, "footprint must not shrink with stride");
        prop_assert!(f1 >= bytes.min(line as u32) as u64);
        prop_assert!(f1 <= line + bytes as u64);
        prop_assert!(spec(stride).packed_bytes_per_iter(false) <= spec(stride).bytes_per_iter());
    }

    /// Arena round trips arbitrary f64 payloads and checksums detect any
    /// single-element change.
    #[test]
    fn arena_roundtrip_and_checksum(
        vals in proptest::collection::vec(any::<f64>().prop_filter("finite", |v| v.is_finite()), 1..100),
        poke in any::<prop::sample::Index>(),
    ) {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, vals.len() as u64);
        let mut arena = Arena::new(&space);
        for (i, v) in vals.iter().enumerate() {
            arena.set_f64(&space, a, i as u64, *v);
        }
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(arena.get_f64(&space, a, i as u64).to_bits(), v.to_bits());
        }
        let before = arena.checksum();
        let i = poke.index(vals.len());
        let old = arena.get_f64(&space, a, i as u64);
        // Flip one mantissa bit: guaranteed bit-level change (adding 1.0
        // would be absorbed for large magnitudes).
        arena.set_f64(&space, a, i as u64, f64::from_bits(old.to_bits() ^ 1));
        prop_assert_ne!(arena.checksum(), before);
    }
}

//! Property tests of the cache model: replacement and coherence invariants
//! that must hold for arbitrary access sequences and geometries.

use proptest::prelude::*;

use cascade_mem::{Access, Cache, CacheConfig, Op, Phase, StreamClass, System};

fn arb_geometry() -> impl Strategy<Value = CacheConfig> {
    // sets in {1,2,4,8,16}, assoc in {1,2,4}, line in {16,32,64}.
    (
        0u32..5,
        prop_oneof![Just(1usize), Just(2), Just(4)],
        prop_oneof![Just(16usize), Just(32), Just(64)],
    )
        .prop_map(|(sets_log, assoc, line)| {
            let sets = 1usize << sets_log;
            CacheConfig {
                size: sets * assoc * line,
                assoc,
                line,
                latency: 3,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Residency never exceeds capacity, and an immediate re-access of the
    /// most recent line always hits.
    #[test]
    fn capacity_and_mru_invariants(
        cfg in arb_geometry(),
        ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..300),
    ) {
        let mut c = Cache::new(cfg);
        for (line, write) in ops {
            c.access(line, write);
            prop_assert!(c.resident_lines() <= cfg.lines());
            prop_assert!(c.contains(line), "just-accessed line must be resident");
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses());
    }

    /// With at most `assoc` distinct lines per set in play, nothing is
    /// ever evicted: every line misses exactly once.
    #[test]
    fn no_conflicts_within_associativity(
        cfg in arb_geometry(),
        rounds in 1usize..20,
    ) {
        let sets = cfg.sets() as u64;
        let mut c = Cache::new(cfg);
        // Touch exactly `assoc` lines in set 0, repeatedly.
        let lines: Vec<u64> = (0..cfg.assoc as u64).map(|w| w * sets).collect();
        for _ in 0..rounds {
            for &l in &lines {
                c.access(l, false);
            }
        }
        prop_assert_eq!(c.stats().misses, cfg.assoc as u64, "only compulsory misses");
    }

    /// Invalidations remove exactly the targeted line and nothing else.
    #[test]
    fn invalidation_is_precise(
        cfg in arb_geometry(),
        lines in proptest::collection::btree_set(0u64..256, 2..20),
    ) {
        let mut c = Cache::new(cfg);
        let lines: Vec<u64> = lines.into_iter().collect();
        for &l in &lines {
            c.access(l, true);
        }
        let victim = lines[0];
        c.invalidate(victim);
        prop_assert!(!c.contains(victim));
        // Any line that was resident just before (other than the victim and
        // anything the victim's own insertion displaced) is untouched by
        // the invalidation: re-check residency equals pre-invalidate state.
        for &l in &lines[1..] {
            if l != victim {
                // May have been evicted by capacity earlier, but the
                // invalidate itself must not remove other lines; re-access
                // and ensure state machine still behaves.
                c.access(l, false);
                prop_assert!(c.contains(l));
            }
        }
    }

    /// System-level: exposed cost is always at least the L1 latency and at
    /// most the full unhidden stack, and prefetching any address then
    /// reading it on the same processor is an L1 hit.
    #[test]
    fn access_cost_bounds_and_prefetch_contract(
        addrs in proptest::collection::vec(0u64..(1 << 22), 1..200),
        proc_count in 1usize..5,
    ) {
        let machine = cascade_mem::machines::pentium_pro();
        let worst = (machine.l1.latency + machine.l2.latency + machine.dirty_remote_latency) as f64 + 1.0;
        let mut sys = System::new(machine.clone(), proc_count);
        for (k, &addr) in addrs.iter().enumerate() {
            let p = k % proc_count;
            let cost = sys.access(
                p,
                Access { addr, bytes: 8, op: Op::Read, class: StreamClass::Indirect },
                Phase::Execution,
            );
            // 8-byte accesses can straddle two lines.
            prop_assert!(cost >= machine.l1.latency as f64);
            prop_assert!(cost <= 2.0 * worst, "cost {} out of bounds", cost);
        }
        // Prefetch-then-read contract on a fresh address.
        let fresh = (1 << 23) as u64;
        sys.access(0, Access { addr: fresh, bytes: 8, op: Op::Prefetch, class: StreamClass::Affine }, Phase::Helper);
        let hit = sys.access(0, Access { addr: fresh, bytes: 8, op: Op::Read, class: StreamClass::Affine }, Phase::Execution);
        prop_assert_eq!(hit, machine.l1.latency as f64);
    }

    /// Coherence: after any interleaving of writes from several processors,
    /// each line's dirty ownership is held by at most one processor — the
    /// last writer — and reading from another processor always succeeds.
    #[test]
    fn single_writer_invariant(
        writes in proptest::collection::vec((0usize..3, 0u64..64), 1..100),
    ) {
        let machine = cascade_mem::machines::pentium_pro();
        let mut sys = System::new(machine, 3);
        let mut last_writer = std::collections::HashMap::new();
        for (p, line) in writes {
            let addr = line * 32;
            sys.access(p, Access { addr, bytes: 8, op: Op::Write, class: StreamClass::Affine }, Phase::Execution);
            last_writer.insert(line, p);
            // No other processor may still hold the line.
            for q in 0..3 {
                if q != p {
                    prop_assert!(!sys.in_l1(q, addr), "proc {} kept a stale L1 copy", q);
                    prop_assert!(!sys.in_l2(q, addr), "proc {} kept a stale L2 copy", q);
                }
            }
        }
    }
}

//! # cascade-mem — memory-hierarchy simulator
//!
//! Substrate crate of the *Cascaded Execution* (IPPS 1999) reproduction.
//! The paper's entire evaluation is a cache story — compulsory, capacity and
//! conflict misses, their latencies, and the cost of transferring control
//! between processors. This crate provides a deterministic, trace-driven
//! model of exactly those mechanisms:
//!
//! * [`cache::Cache`] — set-associative, write-back, write-allocate, true
//!   LRU; one instance per level per processor.
//! * [`directory::Directory`] — line-granular sharing/ownership across
//!   processors (invalidate-on-write, dirty-remote transfer cost).
//! * [`system::System`] — composes per-processor L1/L2 stacks over the
//!   shared directory and charges *exposed* cycles per access, following
//!   the charging rules documented in `DESIGN.md` §6.
//! * [`config`] — the two machines of the paper's Table 1
//!   ([`config::pentium_pro`], [`config::r10000`]) and a scaled
//!   [`config::future`] machine for the §3.4 projection.
//!
//! The simulator is single-threaded and allocation-light; the cascade
//! scheduler in `cascade-core` drives it chunk by chunk.
//!
//! ## Example
//!
//! ```
//! use cascade_mem::{Access, Op, Phase, StreamClass, System, machines};
//!
//! let mut sys = System::new(machines::pentium_pro(), 2);
//! // Processor 1 prefetches a line in its helper phase...
//! sys.access(1, Access { addr: 0, bytes: 8, op: Op::Prefetch, class: StreamClass::Affine },
//!            Phase::Helper);
//! // ...so its later demand read is an L1 hit costing 3 cycles.
//! let cycles = sys.access(1, Access { addr: 0, bytes: 8, op: Op::Read,
//!                                     class: StreamClass::Affine }, Phase::Execution);
//! assert_eq!(cycles, 3.0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod directory;
pub mod stats;
pub mod system;
pub mod tlb;

pub use cache::{Cache, LineOutcome};
pub use config::{CacheConfig, MachineConfig};
pub use directory::{Directory, FetchSource};
pub use stats::{LevelStats, ProcStats, Snapshot};
pub use system::{Access, Op, Phase, StreamClass, System};
pub use tlb::{Tlb, TlbConfig};

/// The machine presets of Table 1 (re-exported as a named module for
/// discoverability: `machines::pentium_pro()`, `machines::r10000()`,
/// `machines::future(&base, scale)`).
pub mod machines {
    pub use crate::config::{future, modern, pentium_pro, r10000};
}

//! A line-granular ownership directory for the simulated shared memory.
//!
//! The directory tracks, for every L2-sized line, which processors hold a
//! copy and which (if any) holds it dirty. It is the mechanism behind two
//! effects the paper depends on:
//!
//! * a processor fetching a line that is dirty in a remote cache pays the
//!   (higher) dirty-remote latency — this is what makes the post-parallel-
//!   section memory state expensive for a lone sequential processor, and
//! * helper-phase prefetches of lines that the current executor then writes
//!   are invalidated, bounding how much a helper can usefully pre-load of a
//!   scatter target.
//!
//! Addresses are dense (the trace layer bump-allocates from zero), so the
//! directory is a flat `Vec` indexed by line number, grown on demand.

/// Sentinel for "no dirty owner".
const NO_OWNER: u8 = u8::MAX;

/// Per-line sharing state.
#[derive(Debug, Clone, Copy)]
struct LineState {
    /// Bitmask of processors holding a copy (supports up to 64 processors).
    sharers: u64,
    /// Processor holding the line dirty, or `NO_OWNER`.
    dirty: u8,
}

impl Default for LineState {
    fn default() -> Self {
        LineState {
            sharers: 0,
            dirty: NO_OWNER,
        }
    }
}

/// What a fetching processor must pay for a line, as seen by the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchSource {
    /// Clean in memory (or only clean copies exist).
    Memory,
    /// Dirty in another processor's cache: forces writeback + transfer.
    RemoteDirty {
        /// The processor whose cache holds the dirty copy.
        owner: usize,
    },
}

/// The directory itself. One instance is shared by all processors of a
/// [`crate::system::System`].
#[derive(Debug, Default, Clone)]
pub struct Directory {
    lines: Vec<LineState>,
}

impl Directory {
    /// Create an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    #[inline]
    fn state_mut(&mut self, line: u64) -> &mut LineState {
        let idx = line as usize;
        if idx >= self.lines.len() {
            self.lines.resize(idx + 1, LineState::default());
        }
        &mut self.lines[idx]
    }

    #[inline]
    fn state(&self, line: u64) -> LineState {
        self.lines.get(line as usize).copied().unwrap_or_default()
    }

    /// Record that processor `proc` is fetching `line` (read or prefetch).
    /// Returns where the data comes from. A dirty remote owner is demoted to
    /// a sharer (its copy becomes clean; memory is updated).
    pub fn fetch_shared(&mut self, proc: usize, line: u64) -> FetchSource {
        assert!(proc < 64, "directory supports at most 64 processors");
        let st = self.state_mut(line);
        let src = if st.dirty != NO_OWNER && st.dirty as usize != proc {
            FetchSource::RemoteDirty {
                owner: st.dirty as usize,
            }
        } else {
            FetchSource::Memory
        };
        if st.dirty != NO_OWNER && st.dirty as usize != proc {
            st.dirty = NO_OWNER;
        }
        st.sharers |= 1 << proc;
        src
    }

    /// Record that processor `proc` is writing `line`. Returns the fetch
    /// source plus the set of *other* processors whose copies must be
    /// invalidated (as a bitmask).
    pub fn fetch_exclusive(&mut self, proc: usize, line: u64) -> (FetchSource, u64) {
        assert!(proc < 64, "directory supports at most 64 processors");
        let st = self.state_mut(line);
        let src = if st.dirty != NO_OWNER && st.dirty as usize != proc {
            FetchSource::RemoteDirty {
                owner: st.dirty as usize,
            }
        } else {
            FetchSource::Memory
        };
        let others = st.sharers & !(1u64 << proc);
        st.sharers = 1 << proc;
        st.dirty = proc as u8;
        (src, others)
    }

    /// Record that `proc`'s last-level cache evicted `line` (writeback if it
    /// was the dirty owner).
    pub fn evict(&mut self, proc: usize, line: u64) {
        let st = self.state_mut(line);
        st.sharers &= !(1u64 << proc);
        if st.dirty as usize == proc {
            st.dirty = NO_OWNER;
        }
    }

    /// True if `proc` is recorded as sharing `line` (diagnostic).
    pub fn is_sharer(&self, proc: usize, line: u64) -> bool {
        self.state(line).sharers & (1 << proc) != 0
    }

    /// The dirty owner of `line`, if any (diagnostic).
    pub fn dirty_owner(&self, line: u64) -> Option<usize> {
        let st = self.state(line);
        (st.dirty != NO_OWNER).then_some(st.dirty as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fetch_comes_from_memory() {
        let mut d = Directory::new();
        assert_eq!(d.fetch_shared(0, 10), FetchSource::Memory);
        assert!(d.is_sharer(0, 10));
        assert_eq!(d.dirty_owner(10), None);
    }

    #[test]
    fn write_makes_dirty_owner_and_invalidates_sharers() {
        let mut d = Directory::new();
        d.fetch_shared(0, 5);
        d.fetch_shared(1, 5);
        let (src, inval) = d.fetch_exclusive(2, 5);
        assert_eq!(src, FetchSource::Memory);
        assert_eq!(inval, 0b011, "procs 0 and 1 must be invalidated");
        assert_eq!(d.dirty_owner(5), Some(2));
        assert!(!d.is_sharer(0, 5));
        assert!(d.is_sharer(2, 5));
    }

    #[test]
    fn reading_a_remote_dirty_line_is_flagged() {
        let mut d = Directory::new();
        d.fetch_exclusive(3, 7);
        match d.fetch_shared(0, 7) {
            FetchSource::RemoteDirty { owner } => assert_eq!(owner, 3),
            other => panic!("expected remote-dirty, got {other:?}"),
        }
        // The dirty copy was flushed to memory; a second reader pays memory.
        assert_eq!(d.fetch_shared(1, 7), FetchSource::Memory);
        assert_eq!(d.dirty_owner(7), None);
    }

    #[test]
    fn own_dirty_line_is_not_remote() {
        let mut d = Directory::new();
        d.fetch_exclusive(1, 9);
        assert_eq!(d.fetch_shared(1, 9), FetchSource::Memory);
        let (src, inval) = d.fetch_exclusive(1, 9);
        assert_eq!(src, FetchSource::Memory);
        assert_eq!(inval, 0);
    }

    #[test]
    fn eviction_clears_ownership() {
        let mut d = Directory::new();
        d.fetch_exclusive(0, 4);
        d.evict(0, 4);
        assert_eq!(d.dirty_owner(4), None);
        assert!(!d.is_sharer(0, 4));
        assert_eq!(d.fetch_shared(1, 4), FetchSource::Memory);
    }

    #[test]
    fn writer_steals_from_dirty_owner() {
        let mut d = Directory::new();
        d.fetch_exclusive(0, 2);
        let (src, inval) = d.fetch_exclusive(1, 2);
        assert_eq!(src, FetchSource::RemoteDirty { owner: 0 });
        assert_eq!(inval, 0b1);
        assert_eq!(d.dirty_owner(2), Some(1));
    }
}

//! A set-associative, write-back, write-allocate cache with true LRU
//! replacement.
//!
//! The cache operates on *line addresses* (byte address divided by the line
//! size); translation from byte ranges to line addresses is done by the
//! [`crate::system::System`] that owns the per-processor hierarchies.

use crate::config::CacheConfig;
use crate::stats::LevelStats;

/// Result of probing or filling one line in a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss {
        /// The line address of a dirty victim displaced by the fill (its
        /// writeback is the caller's responsibility), if any.
        evicted_dirty: Option<u64>,
    },
}

impl LineOutcome {
    /// True when the probe found the line resident.
    #[inline]
    pub fn is_hit(&self) -> bool {
        matches!(self, LineOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    /// Line address stored in this way; `u64::MAX` marks an invalid way.
    tag: u64,
    dirty: bool,
    /// Monotone recency stamp; larger = more recently used.
    lru: u64,
}

const INVALID: u64 = u64::MAX;

/// A single cache level.
///
/// `Cache` deliberately knows nothing about latencies or other levels: it
/// answers "was this line here?" and maintains replacement state. Timing is
/// composed by the system model so that different charging policies (helper
/// vs. execution phase) can reuse the same state machine.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>,
    set_shift: u32,
    set_mask: u64,
    clock: u64,
    stats: LevelStats,
}

impl Cache {
    /// Create an empty (all-invalid) cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        let sets = cfg.sets();
        Cache {
            cfg,
            ways: vec![
                Way {
                    tag: INVALID,
                    dirty: false,
                    lru: 0
                };
                sets * cfg.assoc
            ],
            set_shift: 0, // line address already excludes the offset bits
            set_mask: (sets as u64) - 1,
            clock: 0,
            stats: LevelStats::default(),
        }
    }

    /// The geometry this cache was built with.
    #[inline]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Cumulative hit/miss counters.
    #[inline]
    pub fn stats(&self) -> &LevelStats {
        &self.stats
    }

    #[inline]
    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = ((line_addr >> self.set_shift) & self.set_mask) as usize;
        let base = set * self.cfg.assoc;
        base..base + self.cfg.assoc
    }

    /// Probe without modifying replacement state or counters. Used by tests
    /// and by the directory when deciding invalidation targets.
    pub fn contains(&self, line_addr: u64) -> bool {
        self.ways[self.set_range(line_addr)]
            .iter()
            .any(|w| w.tag == line_addr)
    }

    /// True if the line is present and dirty.
    pub fn is_dirty(&self, line_addr: u64) -> bool {
        self.ways[self.set_range(line_addr)]
            .iter()
            .any(|w| w.tag == line_addr && w.dirty)
    }

    /// Access a line: on a hit, update LRU (and dirtiness for writes); on a
    /// miss, fill the line, evicting the LRU way.
    ///
    /// Returns the outcome, including the address of any dirty line that was
    /// written back to make room.
    pub fn access(&mut self, line_addr: u64, write: bool) -> LineOutcome {
        debug_assert_ne!(line_addr, INVALID, "reserved line address");
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(line_addr);
        let set = &mut self.ways[range];

        // Hit path.
        if let Some(w) = set.iter_mut().find(|w| w.tag == line_addr) {
            w.lru = clock;
            w.dirty |= write;
            self.stats.hits += 1;
            return LineOutcome::Hit;
        }

        // Miss: pick an invalid way if any, else the least recently used.
        self.stats.misses += 1;
        let victim = match set.iter_mut().find(|w| w.tag == INVALID) {
            Some(w) => w,
            None => set.iter_mut().min_by_key(|w| w.lru).expect("assoc >= 1"),
        };
        let evicted_dirty = (victim.tag != INVALID && victim.dirty).then_some(victim.tag);
        if evicted_dirty.is_some() {
            self.stats.writebacks += 1;
        }
        *victim = Way {
            tag: line_addr,
            dirty: write,
            lru: clock,
        };
        LineOutcome::Miss { evicted_dirty }
    }

    /// Remove a line if present (coherence invalidation). Returns `true` if
    /// the line was present and dirty — the caller is responsible for the
    /// implied writeback.
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let range = self.set_range(line_addr);
        for w in &mut self.ways[range] {
            if w.tag == line_addr {
                let was_dirty = w.dirty;
                *w = Way {
                    tag: INVALID,
                    dirty: false,
                    lru: 0,
                };
                self.stats.invalidations += 1;
                return was_dirty;
            }
        }
        false
    }

    /// Drop all contents (e.g. between independent experiments) without
    /// resetting counters.
    pub fn flush(&mut self) {
        for w in &mut self.ways {
            *w = Way {
                tag: INVALID,
                dirty: false,
                lru: 0,
            };
        }
    }

    /// Number of valid lines currently resident (test/diagnostic helper).
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.tag != INVALID).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways, 32B lines = 256B cache.
        Cache::new(CacheConfig {
            size: 256,
            assoc: 2,
            line: 32,
            latency: 1,
        })
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(7, false).is_hit());
        assert!(c.access(7, false).is_hit());
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent_within_set() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets). Assoc 2.
        c.access(0, false);
        c.access(4, false);
        c.access(0, false); // 0 is now MRU, 4 is LRU
        c.access(8, false); // evicts 4
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true);
        assert!(c.is_dirty(0));
        c.access(4, false);
        // Touch 4 so 0 becomes LRU, then force eviction of 0.
        c.access(4, false);
        match c.access(8, false) {
            LineOutcome::Miss {
                evicted_dirty: Some(addr),
            } => assert_eq!(addr, 0),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn read_then_write_upgrades_dirtiness() {
        let mut c = tiny();
        c.access(3, false);
        assert!(!c.is_dirty(3));
        c.access(3, true);
        assert!(c.is_dirty(3));
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = tiny();
        c.access(5, true);
        assert!(c.invalidate(5));
        assert!(!c.contains(5));
        // Idempotent on absent lines.
        assert!(!c.invalidate(5));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        for line in 0..4u64 {
            c.access(line, false);
        }
        for line in 0..4u64 {
            assert!(c.contains(line), "line {line} should be resident");
        }
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn flush_empties_but_keeps_stats() {
        let mut c = tiny();
        c.access(1, false);
        c.access(2, false);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = tiny();
        for line in 0..1000u64 {
            c.access(line, line % 3 == 0);
        }
        assert!(c.resident_lines() <= c.config().lines());
    }
}

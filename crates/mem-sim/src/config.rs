//! Machine descriptions: cache geometries, latencies, and overlap factors.
//!
//! The two concrete machines come from Table 1 of the paper; the `future`
//! constructor scales main-memory latency to model the paper's §3.4
//! projection that memory access will increasingly dominate execution time.

/// Geometry and latency of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set). Must divide `size / line`.
    pub assoc: usize,
    /// Line size in bytes. Must be a power of two.
    pub line: usize,
    /// Access (hit) latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets in the cache.
    #[inline]
    pub fn sets(&self) -> usize {
        self.size / (self.line * self.assoc)
    }

    /// Number of lines in the cache.
    #[inline]
    pub fn lines(&self) -> usize {
        self.size / self.line
    }

    /// Bytes covered by one way (the aliasing distance: two addresses whose
    /// distance is a multiple of this map to the same set).
    #[inline]
    pub fn way_bytes(&self) -> usize {
        self.size / self.assoc
    }

    /// Validate internal consistency; panics on nonsensical geometry.
    pub fn validate(&self) {
        assert!(
            self.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.assoc >= 1, "associativity must be >= 1");
        assert!(
            self.size.is_multiple_of(self.line * self.assoc),
            "size must be a multiple of line * assoc"
        );
        assert!(
            self.sets().is_power_of_two(),
            "set count must be a power of two"
        );
    }
}

/// Full description of a simulated shared-memory multiprocessor.
///
/// Latencies are charged as *exposed* cycles on the critical path of the
/// execution phase; the `*_overlap` factors model how much of a miss's
/// latency the processor can hide (out-of-order execution, non-blocking
/// caches with up to four outstanding requests, and — on the R10000 — the
/// MIPSpro compiler's automatic software prefetching; see paper §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable machine name, e.g. `"Pentium Pro"`.
    pub name: &'static str,
    /// First-level data cache.
    pub l1: CacheConfig,
    /// Second-level unified cache.
    pub l2: CacheConfig,
    /// Optional third-level cache (None on the paper's 1997 machines;
    /// used by the `modern` preset).
    pub l3: Option<CacheConfig>,
    /// Main-memory access latency in cycles (beyond the L2 lookup).
    pub mem_latency: u64,
    /// Extra cost of fetching a line that is dirty in another processor's
    /// cache (writeback + transfer), charged instead of `mem_latency`.
    pub dirty_remote_latency: u64,
    /// Cost in cycles of one transfer of control between processors
    /// (shared flag store + remote spin read; §3.3 footnote 2).
    pub transfer_cost: u64,
    /// Divisor applied to the exposed latency of *first-touch* misses on
    /// address-predictable (affine) streams during execution phases and the
    /// sequential baseline. Models hardware overlap plus, where present,
    /// compiler-inserted prefetch.
    pub affine_overlap: f64,
    /// Divisor applied to the exposed latency of first-touch misses on
    /// data-dependent (indirect/gather) streams.
    pub indirect_overlap: f64,
    /// Divisor applied to the exposed latency of *re-misses* (lines that
    /// were already touched this region and got bounced by a conflict or
    /// capacity eviction). Hardware prefetch retries and out-of-order
    /// overlap hide part of even these on aggressive cores.
    pub conflict_overlap: f64,
    /// Divisor applied to miss latency during *helper* phases. Helper loops
    /// execute the same dependent address chains as the original body (a
    /// gather's index must load before its data), so they pipeline only
    /// marginally better than demand execution; the paper's observation
    /// that helpers often fail to complete at 4-8 processors pins this
    /// near 1.
    pub helper_overlap: f64,
    /// True when the machine's production compiler already inserts software
    /// prefetches (MIPSpro on the R10000). Recorded for reporting; the
    /// effect itself is folded into `affine_overlap`.
    pub compiler_prefetch: bool,
    /// Optional data-TLB model. `None` (the default in the Table-1
    /// presets) reproduces the paper's cache-only measurements; enable it
    /// with [`MachineConfig::with_tlb`] to expose the sequential buffer's
    /// page-locality benefit (see `cascade-mem/src/tlb.rs`).
    pub tlb: Option<crate::tlb::TlbConfig>,
}

impl MachineConfig {
    /// Validate the nested cache configurations.
    pub fn validate(&self) {
        self.l1.validate();
        self.l2.validate();
        assert!(
            self.l2.line >= self.l1.line,
            "L2 line must be at least as large as L1 line"
        );
        if let Some(l3) = &self.l3 {
            l3.validate();
            assert_eq!(
                l3.line, self.l2.line,
                "L3 must share the L2 line size (uniform coherence granularity)"
            );
        }
        assert!(self.affine_overlap >= 1.0);
        assert!(self.indirect_overlap >= 1.0);
        assert!(self.conflict_overlap >= 1.0);
        assert!(self.helper_overlap >= 1.0);
        if let Some(tlb) = &self.tlb {
            tlb.validate();
        }
    }

    /// The coarsest line size in the hierarchy (used for directory granularity).
    #[inline]
    pub fn coherence_line(&self) -> usize {
        self.l3.map_or(self.l2.line, |l3| l3.line)
    }

    /// Return a copy of this machine with the given data TLB enabled.
    pub fn with_tlb(mut self, tlb: crate::tlb::TlbConfig) -> Self {
        tlb.validate();
        self.tlb = Some(tlb);
        self
    }
}

/// The 4-processor 200 MHz Pentium Pro server of Table 1
/// (NT Server 4.0; L1 8KB/2-way/32B/3cy, L2 512KB/4-way/32B/7cy, memory 58cy).
pub fn pentium_pro() -> MachineConfig {
    let m = MachineConfig {
        name: "Pentium Pro",
        l1: CacheConfig {
            size: 8 * 1024,
            assoc: 2,
            line: 32,
            latency: 3,
        },
        l2: CacheConfig {
            size: 512 * 1024,
            assoc: 4,
            line: 32,
            latency: 7,
        },
        l3: None,
        mem_latency: 58,
        dirty_remote_latency: 80,
        transfer_cost: 120,
        affine_overlap: 2.0,
        indirect_overlap: 1.5,
        conflict_overlap: 1.0,
        helper_overlap: 1.2,
        compiler_prefetch: false,
        tlb: None,
    };
    m.validate();
    m
}

/// The 8-processor 194 MHz R10000 SGI Power Onyx of Table 1
/// (IRIX 6.2; L1 32KB/2-way/32B/3cy, L2 2MB/2-way/128B/6cy, memory 100-200cy).
///
/// We use the midpoint (150 cycles) of the paper's 100-200 cycle range for
/// uniform accesses and the top of the range for dirty-remote fetches.
pub fn r10000() -> MachineConfig {
    let m = MachineConfig {
        name: "R10000",
        l1: CacheConfig {
            size: 32 * 1024,
            assoc: 2,
            line: 32,
            latency: 3,
        },
        l2: CacheConfig {
            size: 2 * 1024 * 1024,
            assoc: 2,
            line: 128,
            latency: 6,
        },
        l3: None,
        mem_latency: 150,
        dirty_remote_latency: 200,
        transfer_cost: 500,
        // MIPSpro inserts prefetch instructions in optimized code (§3.3), so
        // predictable streaming misses are largely hidden even in the
        // original sequential execution.
        affine_overlap: 4.0,
        indirect_overlap: 2.0,
        conflict_overlap: 1.5,
        helper_overlap: 1.3,
        compiler_prefetch: true,
        tlb: None,
    };
    m.validate();
    m
}

/// A representative 2020s server core: three cache levels, 64-byte lines,
/// deep out-of-order execution with many outstanding misses, and a memory
/// latency near 300 cycles. Not part of the paper; used by the
/// `extra_modern` experiment to ask whether cascaded execution still pays
/// on current hardware.
pub fn modern() -> MachineConfig {
    let m = MachineConfig {
        name: "Modern",
        l1: CacheConfig {
            size: 32 * 1024,
            assoc: 8,
            line: 64,
            latency: 4,
        },
        l2: CacheConfig {
            size: 512 * 1024,
            assoc: 8,
            line: 64,
            latency: 14,
        },
        l3: Some(CacheConfig {
            size: 8 * 1024 * 1024,
            assoc: 16,
            line: 64,
            latency: 42,
        }),
        mem_latency: 300,
        dirty_remote_latency: 180, // on-die cache-to-cache beats DRAM now
        transfer_cost: 250,        // cross-core flag handoff, ~80ns at 3GHz
        affine_overlap: 8.0,       // L2 stream prefetchers + ~16 MSHRs
        indirect_overlap: 3.0,
        conflict_overlap: 2.0,
        helper_overlap: 1.5,
        compiler_prefetch: true,
        tlb: None,
    };
    m.validate();
    m
}

/// A projected future machine (§3.4): same cache geometry as the given base
/// machine but with main-memory latency scaled by `mem_scale`, modelling
/// processors continuing to outpace memory.
pub fn future(base: &MachineConfig, mem_scale: f64) -> MachineConfig {
    assert!(mem_scale >= 1.0, "future machines do not get faster memory");
    let mut m = base.clone();
    m.name = "Future";
    m.mem_latency = (m.mem_latency as f64 * mem_scale).round() as u64;
    m.dirty_remote_latency = (m.dirty_remote_latency as f64 * mem_scale).round() as u64;
    m.validate();
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pentium_pro_geometry() {
        let m = pentium_pro();
        assert_eq!(m.l1.size, 8 * 1024);
        assert_eq!(m.l1.assoc, 2);
        assert_eq!(m.l1.line, 32);
        assert_eq!(m.l1.latency, 3);
        assert_eq!(m.l2.size, 512 * 1024);
        assert_eq!(m.l2.assoc, 4);
        assert_eq!(m.l2.latency, 7);
        assert_eq!(m.mem_latency, 58);
        assert_eq!(m.transfer_cost, 120);
        assert!(!m.compiler_prefetch);
    }

    #[test]
    fn table1_r10000_geometry() {
        let m = r10000();
        assert_eq!(m.l1.size, 32 * 1024);
        assert_eq!(m.l2.size, 2 * 1024 * 1024);
        assert_eq!(m.l2.assoc, 2);
        assert_eq!(m.l2.line, 128);
        assert_eq!(m.transfer_cost, 500);
        assert!(m.compiler_prefetch);
        assert!(m.mem_latency >= 100 && m.mem_latency <= 200);
    }

    #[test]
    fn set_and_way_math() {
        let c = CacheConfig {
            size: 512 * 1024,
            assoc: 4,
            line: 32,
            latency: 7,
        };
        assert_eq!(c.sets(), 4096);
        assert_eq!(c.lines(), 16384);
        assert_eq!(c.way_bytes(), 128 * 1024);
    }

    #[test]
    fn future_scales_memory_only() {
        let base = pentium_pro();
        let f = future(&base, 4.0);
        assert_eq!(f.mem_latency, 232);
        assert_eq!(f.l1, base.l1);
        assert_eq!(f.l2, base.l2);
        assert_eq!(f.transfer_cost, base.transfer_cost);
    }

    #[test]
    #[should_panic(expected = "future machines")]
    fn future_rejects_speedup_of_memory() {
        future(&pentium_pro(), 0.5);
    }

    #[test]
    fn aliasing_distances_differ_between_machines() {
        // The R10000's 2-way 2MB L2 has a 1MB aliasing distance; the Pentium
        // Pro's 4-way 512KB L2 aliases at 128KB but tolerates four streams.
        assert_eq!(pentium_pro().l2.way_bytes(), 128 * 1024);
        assert_eq!(r10000().l2.way_bytes(), 1024 * 1024);
    }
}

//! An optional TLB model.
//!
//! The paper's evaluation measures caches only, so the Table-1 machine
//! presets ship with the TLB disabled — enabling it does not change any
//! reproduced figure. It exists because the sequential buffer has a
//! second, unmeasured benefit the paper's §2.1 argument implies: packing
//! read-only operands densely also collapses the *page* working set of
//! the execution phase, which matters on machines like the R10000 whose
//! TLB misses are handled by a software trap. The `extra_tlb_effect`
//! binary in `cascade-bench` quantifies this.

/// Geometry and cost of a (fully-associative, LRU) data TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page: usize,
    /// Cycles charged per miss (page-table walk or software refill).
    pub miss_cycles: u64,
}

impl TlbConfig {
    /// Validate the configuration; panics on nonsense.
    pub fn validate(&self) {
        assert!(self.entries >= 1, "TLB needs at least one entry");
        assert!(
            self.page.is_power_of_two(),
            "page size must be a power of two"
        );
    }

    /// The Pentium Pro's data TLB: 64 entries, 4KB pages, hardware page
    /// walk (~25 cycles).
    pub fn pentium_pro() -> Self {
        TlbConfig {
            entries: 64,
            page: 4096,
            miss_cycles: 25,
        }
    }

    /// The R10000's TLB: 64 entries, 4KB pages (smallest configuration),
    /// software-refilled — expensive (~70 cycles).
    pub fn r10000() -> Self {
        TlbConfig {
            entries: 64,
            page: 4096,
            miss_cycles: 70,
        }
    }
}

/// A fully-associative LRU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// page number -> last-use stamp.
    entries: std::collections::HashMap<u64, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// An empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        cfg.validate();
        Tlb {
            cfg,
            entries: std::collections::HashMap::with_capacity(cfg.entries + 1),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Translate the page containing `addr`; returns the cycles charged
    /// (0 on a hit, `miss_cycles` on a miss).
    pub fn access(&mut self, addr: u64) -> u64 {
        self.clock += 1;
        let page = addr / self.cfg.page as u64;
        if let Some(stamp) = self.entries.get_mut(&page) {
            *stamp = self.clock;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() >= self.cfg.entries {
            // Evict the least recently used entry (bounded scan: the map
            // never exceeds `entries` slots, 64 on both machines).
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(page, _)| page)
                .expect("non-empty");
            self.entries.remove(&victim);
        }
        self.entries.insert(page, self.clock);
        self.cfg.miss_cycles
    }

    /// Drop all translations (context switch / flush).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Hits so far.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resident translations (diagnostic).
    pub fn resident(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 4,
            page: 4096,
            miss_cycles: 25,
        })
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = tiny();
        assert_eq!(t.access(0), 25);
        assert_eq!(t.access(8), 0, "same page hits");
        assert_eq!(t.access(4096), 25, "next page misses");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn capacity_is_bounded_and_lru_evicts() {
        let mut t = tiny();
        for p in 0..4u64 {
            t.access(p * 4096);
        }
        assert_eq!(t.resident(), 4);
        t.access(0); // page 0 now MRU
        t.access(4 * 4096); // evicts page 1 (LRU)
        assert_eq!(t.resident(), 4);
        assert_eq!(t.access(0), 0, "page 0 must have survived");
        assert_eq!(t.access(4096), 25, "page 1 must have been evicted");
    }

    #[test]
    fn sequential_walk_misses_once_per_page() {
        let mut t = Tlb::new(TlbConfig::pentium_pro());
        let mut cycles = 0;
        for addr in (0..16 * 4096u64).step_by(32) {
            cycles += t.access(addr);
        }
        assert_eq!(t.misses(), 16);
        assert_eq!(cycles, 16 * 25);
    }

    #[test]
    fn scattered_walk_thrashes() {
        // 128 pages round-robin through a 64-entry TLB: every access misses.
        let mut t = Tlb::new(TlbConfig::pentium_pro());
        for round in 0..3 {
            for p in 0..128u64 {
                let cost = t.access(p * 4096);
                if round > 0 {
                    assert_eq!(cost, 25, "page {p} should keep missing");
                }
            }
        }
    }

    #[test]
    fn flush_empties() {
        let mut t = tiny();
        t.access(0);
        t.flush();
        assert_eq!(t.resident(), 0);
        assert_eq!(t.access(0), 25);
    }

    #[test]
    fn machine_presets_validate() {
        TlbConfig::pentium_pro().validate();
        TlbConfig::r10000().validate();
        assert!(TlbConfig::r10000().miss_cycles > TlbConfig::pentium_pro().miss_cycles);
    }
}

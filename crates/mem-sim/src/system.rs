//! The multiprocessor model: per-processor L1/L2 hierarchies over a shared
//! directory, with the cycle-charging rules described in DESIGN.md §6.
//!
//! All timing flows through [`System::access`], which returns the *exposed*
//! cycles the access contributes to its processor's critical path. Callers
//! (the cascade scheduler in `cascade-core`) compose these per-access costs
//! into phase times and schedules; the system itself has no notion of
//! chunks or tokens.

use std::collections::HashSet;

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::directory::{Directory, FetchSource};
use crate::stats::{ProcStats, Snapshot};

/// What an access does to the touched bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load the data (value is needed).
    Read,
    /// Store to the data (write-allocate).
    Write,
    /// Helper-phase prefetch: fills the caches like a read but represents a
    /// speculative, fully pipelineable load.
    Prefetch,
}

/// Address-predictability of the stream this access belongs to, which
/// decides how much of a first-touch miss the hardware/compiler can hide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamClass {
    /// Affine (base + i*stride): predictable, prefetchable.
    Affine,
    /// Data-dependent (indexed gather/scatter): unpredictable.
    Indirect,
}

/// Whether the access happens on the critical path (execution phase or the
/// sequential baseline) or in a helper phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// On the critical path: charged with the machine's per-class overlap.
    Execution,
    /// Off the critical path: independent loads, pipelined up to the
    /// outstanding-miss limit (`helper_overlap`).
    Helper,
}

/// One memory access: `bytes` bytes at simulated byte address `addr`.
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// Simulated byte address.
    pub addr: u64,
    /// Access width in bytes (may span cache lines).
    pub bytes: u32,
    /// Operation kind.
    pub op: Op,
    /// Stream predictability class.
    pub class: StreamClass,
}

struct Proc {
    l1: Cache,
    l2: Cache,
    l3: Option<Cache>,
    tlb: Option<crate::tlb::Tlb>,
    /// L2-line addresses touched since the last [`System::begin_region`]:
    /// a miss on a line present here is a *re-miss* (conflict or capacity),
    /// whose latency prefetching cannot hide (DESIGN.md §6.1).
    seen: HashSet<u64>,
    cycles: f64,
    mem_lines: u64,
    remote_dirty_lines: u64,
}

/// A simulated shared-memory multiprocessor.
pub struct System {
    cfg: MachineConfig,
    procs: Vec<Proc>,
    dir: Directory,
}

impl System {
    /// Build a system of `nprocs` processors of the given machine type, all
    /// caches cold.
    pub fn new(cfg: MachineConfig, nprocs: usize) -> Self {
        cfg.validate();
        assert!((1..=64).contains(&nprocs), "1..=64 processors supported");
        let procs = (0..nprocs)
            .map(|_| Proc {
                l1: Cache::new(cfg.l1),
                l2: Cache::new(cfg.l2),
                l3: cfg.l3.map(Cache::new),
                tlb: cfg.tlb.map(crate::tlb::Tlb::new),
                seen: HashSet::new(),
                cycles: 0.0,
                mem_lines: 0,
                remote_dirty_lines: 0,
            })
            .collect();
        System {
            cfg,
            procs,
            dir: Directory::new(),
        }
    }

    /// The machine description this system simulates.
    #[inline]
    pub fn machine(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of processors.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// Start a new measurement region (e.g. one loop of PARMVR) on every
    /// processor: clears the first-touch tracking used to classify re-misses.
    /// Cache *contents* are preserved — data reuse across loops is real.
    pub fn begin_region(&mut self) {
        for p in &mut self.procs {
            p.seen.clear();
        }
    }

    /// Charge plain compute cycles to a processor (no memory side effects).
    #[inline]
    pub fn charge(&mut self, proc: usize, cycles: f64) -> f64 {
        self.procs[proc].cycles += cycles;
        cycles
    }

    /// Perform one access on behalf of `proc`, updating cache and directory
    /// state, and return the exposed cycles charged.
    pub fn access(&mut self, proc: usize, a: Access, phase: Phase) -> f64 {
        debug_assert!(a.bytes > 0, "zero-byte access");
        let l1_line = self.cfg.l1.line as u64;
        let first = a.addr / l1_line;
        let last = (a.addr + a.bytes as u64 - 1) / l1_line;
        let mut cycles = 0.0;
        // Address translation precedes the cache lookup; one translation
        // per page touched (an access can straddle a page boundary).
        if let Some(tlb) = &mut self.procs[proc].tlb {
            let page = tlb.config().page as u64;
            cycles += tlb.access(a.addr) as f64;
            let end = a.addr + a.bytes as u64 - 1;
            if end / page != a.addr / page {
                cycles += tlb.access(end) as f64;
            }
        }
        for line in first..=last {
            cycles += self.access_l1_line(proc, line * l1_line, a.op, a.class, phase);
        }
        self.procs[proc].cycles += cycles;
        cycles
    }

    /// TLB hit/miss counters of a processor, when the machine models a
    /// TLB.
    pub fn tlb_stats(&self, proc: usize) -> Option<(u64, u64)> {
        self.procs[proc]
            .tlb
            .as_ref()
            .map(|t| (t.hits(), t.misses()))
    }

    /// Access a single L1-line-aligned address. Returns exposed cycles.
    fn access_l1_line(
        &mut self,
        proc: usize,
        addr: u64,
        op: Op,
        class: StreamClass,
        phase: Phase,
    ) -> f64 {
        let write = matches!(op, Op::Write);
        let l1_line = addr / self.cfg.l1.line as u64;
        let l2_line = addr / self.cfg.l2.line as u64;

        // Issue cost: a prefetch is a one-cycle instruction; a demand access
        // pays the L1 hit latency.
        let mut cycles: f64 = match op {
            Op::Prefetch => 1.0,
            _ => self.cfg.l1.latency as f64,
        };

        // On any write we must gain exclusive ownership of the (L2-granular)
        // line, invalidating remote copies, even on a local hit. The fetch
        // source must be captured *here* — after this call the directory
        // records us as the dirty owner.
        let mut write_src = None;
        if write {
            let (src, inval_mask) = self.dir.fetch_exclusive(proc, l2_line);
            self.apply_invalidations(inval_mask, l2_line);
            write_src = Some(src);
        }

        let p = &mut self.procs[proc];
        if p.l1.access(l1_line, write).is_hit() {
            return cycles;
        }

        // L1 miss -> L2 lookup.
        cycles += self.cfg.l2.latency as f64;
        let l2_outcome = p.l2.access(l2_line, write);
        let l2_hit = l2_outcome.is_hit();
        let re_miss = !l2_hit && p.seen.contains(&l2_line);
        p.seen.insert(l2_line);

        // Dirty L2 victims are written back and released in the directory.
        // Clean evictions leave a stale sharer bit behind, which is benign:
        // the stale sharer merely receives a harmless extra invalidation if
        // another processor later writes that line.
        if let crate::cache::LineOutcome::Miss {
            evicted_dirty: Some(victim),
        } = l2_outcome
        {
            self.dir.evict(proc, victim);
        }

        if l2_hit {
            return cycles;
        }

        // L2 miss -> L3 (when modelled). L3 shares the L2 line size, so
        // the same line index applies.
        if let Some(l3) = &mut p.l3 {
            cycles += l3.config().latency as f64;
            let l3_outcome = l3.access(l2_line, write);
            if let crate::cache::LineOutcome::Miss {
                evicted_dirty: Some(victim),
            } = l3_outcome
            {
                self.dir.evict(proc, victim);
            }
            if l3_outcome.is_hit() {
                return cycles;
            }
        }

        // Last-level miss -> memory or remote cache. For writes the source
        // was resolved by the exclusive fetch above.
        let src = match write_src {
            Some(src) => src,
            None => self.dir.fetch_shared(proc, l2_line),
        };
        let p = &mut self.procs[proc];
        p.mem_lines += 1;
        let raw = match src {
            FetchSource::Memory => self.cfg.mem_latency as f64,
            FetchSource::RemoteDirty { .. } => {
                p.remote_dirty_lines += 1;
                self.cfg.dirty_remote_latency as f64
            }
        };
        let overlap = match phase {
            Phase::Helper => self.cfg.helper_overlap,
            Phase::Execution => {
                if re_miss {
                    // Conflict/capacity re-misses defeat software prefetch
                    // and stream predictors; only the machine's residual
                    // overlap applies.
                    self.cfg.conflict_overlap
                } else {
                    match class {
                        StreamClass::Affine => self.cfg.affine_overlap,
                        StreamClass::Indirect => self.cfg.indirect_overlap,
                    }
                }
            }
        };
        cycles += raw / overlap;
        cycles
    }

    fn apply_invalidations(&mut self, mask: u64, l2_line: u64) {
        if mask == 0 {
            return;
        }
        let ratio = (self.cfg.l2.line / self.cfg.l1.line) as u64;
        let mut m = mask;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            m &= m - 1;
            if q >= self.procs.len() {
                continue; // stale directory bit from a clean eviction
            }
            let p = &mut self.procs[q];
            p.l2.invalidate(l2_line);
            if let Some(l3) = &mut p.l3 {
                l3.invalidate(l2_line);
            }
            for sub in 0..ratio {
                p.l1.invalidate(l2_line * ratio + sub);
            }
        }
    }

    /// Copy out all processors' counters.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            procs: self
                .procs
                .iter()
                .map(|p| ProcStats {
                    l1: *p.l1.stats(),
                    l2: *p.l2.stats(),
                    l3: p.l3.as_ref().map_or_else(Default::default, |c| *c.stats()),
                    cycles: p.cycles,
                    mem_lines: p.mem_lines,
                    remote_dirty_lines: p.remote_dirty_lines,
                    tlb_misses: p.tlb.as_ref().map_or(0, |t| t.misses()),
                })
                .collect(),
        }
    }

    /// Drop all cache contents and ownership state on every processor,
    /// keeping counters. Models an intervening program phase (e.g. the
    /// parallel sections between PARMVR calls) that displaces the loop data.
    pub fn flush_all(&mut self) {
        for p in &mut self.procs {
            p.l1.flush();
            p.l2.flush();
            if let Some(l3) = &mut p.l3 {
                l3.flush();
            }
            p.seen.clear();
            if let Some(tlb) = &mut p.tlb {
                tlb.flush();
            }
        }
        self.dir = Directory::new();
    }

    /// Diagnostic: is this byte address resident in `proc`'s L2?
    pub fn in_l2(&self, proc: usize, addr: u64) -> bool {
        self.procs[proc].l2.contains(addr / self.cfg.l2.line as u64)
    }

    /// Diagnostic: is this byte address resident in `proc`'s L1?
    pub fn in_l1(&self, proc: usize, addr: u64) -> bool {
        self.procs[proc].l1.contains(addr / self.cfg.l1.line as u64)
    }

    /// Diagnostic: is this byte address resident in `proc`'s L3 (false on
    /// machines without one)?
    pub fn in_l3(&self, proc: usize, addr: u64) -> bool {
        self.procs[proc]
            .l3
            .as_ref()
            .is_some_and(|c| c.contains(addr / self.cfg.l2.line as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{pentium_pro, r10000};

    fn read(addr: u64) -> Access {
        Access {
            addr,
            bytes: 8,
            op: Op::Read,
            class: StreamClass::Affine,
        }
    }

    fn write(addr: u64) -> Access {
        Access {
            addr,
            bytes: 8,
            op: Op::Write,
            class: StreamClass::Affine,
        }
    }

    #[test]
    fn cold_read_pays_full_stack_and_then_hits() {
        let mut s = System::new(pentium_pro(), 1);
        let m = s.machine().clone();
        let c1 = s.access(0, read(0), Phase::Execution);
        let expect = (m.l1.latency + m.l2.latency) as f64 + m.mem_latency as f64 / m.affine_overlap;
        assert!((c1 - expect).abs() < 1e-9, "cold cost {c1} != {expect}");
        let c2 = s.access(0, read(0), Phase::Execution);
        assert_eq!(c2, m.l1.latency as f64);
    }

    #[test]
    fn prefetch_fills_cache_for_later_demand_read() {
        let mut s = System::new(pentium_pro(), 1);
        s.access(
            0,
            Access {
                op: Op::Prefetch,
                ..read(64)
            },
            Phase::Helper,
        );
        assert!(s.in_l1(0, 64));
        let c = s.access(0, read(64), Phase::Execution);
        assert_eq!(c, s.machine().l1.latency as f64);
    }

    #[test]
    fn helper_prefetch_is_cheaper_than_an_unhidden_miss() {
        // A helper prefetch saves the L1/L2 probe latencies of a demand
        // access and applies the helper overlap; it must always beat the
        // fully-exposed (re-miss) cost — but it is *not* free: the paper's
        // helpers often fail to complete, which requires their per-line
        // cost to be of the same order as a demand miss.
        let m = pentium_pro();
        let mut s = System::new(m.clone(), 2);
        let pre = s.access(
            1,
            Access {
                op: Op::Prefetch,
                ..read(8192)
            },
            Phase::Helper,
        );
        let unhidden = (m.l1.latency + m.l2.latency + m.mem_latency) as f64;
        assert!(
            pre < unhidden,
            "prefetch {pre} must beat an unhidden miss {unhidden}"
        );
        assert!(
            pre > m.mem_latency as f64 / 4.0,
            "prefetch {pre} must not be unrealistically cheap"
        );
    }

    #[test]
    fn remote_dirty_fetch_costs_more() {
        let m = pentium_pro();
        let mut s = System::new(m.clone(), 2);
        s.access(0, write(128), Phase::Execution);
        let c = s.access(1, read(128), Phase::Execution);
        let expect =
            (m.l1.latency + m.l2.latency) as f64 + m.dirty_remote_latency as f64 / m.affine_overlap;
        assert!(
            (c - expect).abs() < 1e-9,
            "remote dirty cost {c} != {expect}"
        );
        let snap = s.snapshot();
        assert_eq!(snap.procs[1].remote_dirty_lines, 1);
    }

    #[test]
    fn write_invalidates_remote_copies() {
        let mut s = System::new(pentium_pro(), 2);
        s.access(1, read(256), Phase::Execution);
        assert!(s.in_l1(1, 256));
        s.access(0, write(256), Phase::Execution);
        assert!(!s.in_l1(1, 256), "proc 1's L1 copy must be invalidated");
        assert!(!s.in_l2(1, 256), "proc 1's L2 copy must be invalidated");
    }

    #[test]
    fn re_miss_is_not_overlapped() {
        // Force a conflict: Pentium Pro L1 is 2-way with 4KB way size, but
        // conflict in L2 requires 4 streams at 128KB spacing; easier to use
        // the seen-set directly by touching, evicting (via capacity), and
        // re-touching a line in a 1-proc system.
        let m = pentium_pro();
        let mut s = System::new(m.clone(), 1);
        s.begin_region();
        let c_first = s.access(0, read(0), Phase::Execution);
        // Evict line 0 from L2 by walking 5 lines 128KB apart (assoc 4).
        for k in 1..=5u64 {
            s.access(0, read(k * 128 * 1024), Phase::Execution);
        }
        assert!(!s.in_l2(0, 0));
        let c_re = s.access(0, read(0), Phase::Execution);
        let expect_re = (m.l1.latency + m.l2.latency) as f64 + m.mem_latency as f64;
        assert!(
            (c_re - expect_re).abs() < 1e-9,
            "re-miss {c_re} != {expect_re}"
        );
        assert!(c_re > c_first);
    }

    #[test]
    fn begin_region_resets_re_miss_classification() {
        let m = pentium_pro();
        let mut s = System::new(m.clone(), 1);
        s.access(0, read(0), Phase::Execution);
        for k in 1..=5u64 {
            s.access(0, read(k * 128 * 1024), Phase::Execution);
        }
        s.begin_region();
        let c = s.access(0, read(0), Phase::Execution);
        let expect = (m.l1.latency + m.l2.latency) as f64 + m.mem_latency as f64 / m.affine_overlap;
        assert!(
            (c - expect).abs() < 1e-9,
            "after region reset {c} != {expect}"
        );
    }

    #[test]
    fn multi_line_access_charges_each_line() {
        let m = pentium_pro();
        let mut s = System::new(m.clone(), 1);
        // 64 bytes at offset 0 touches two 32-byte lines.
        let c = s.access(
            0,
            Access {
                addr: 0,
                bytes: 64,
                op: Op::Read,
                class: StreamClass::Affine,
            },
            Phase::Execution,
        );
        let one = (m.l1.latency + m.l2.latency) as f64 + m.mem_latency as f64 / m.affine_overlap;
        assert!((c - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn r10000_long_lines_fetch_fewer_l2_lines() {
        let mut s = System::new(r10000(), 1);
        // Walk 1KB sequentially in 32-byte steps: 8 L2 lines of 128B.
        for i in 0..32u64 {
            s.access(0, read(i * 32), Phase::Execution);
        }
        let t = s.snapshot().total();
        assert_eq!(t.mem_lines, 8);
        assert_eq!(t.l1.misses, 32, "every 32B step misses the 32B-line L1");
    }

    #[test]
    fn indirect_class_pays_more_than_affine_on_ppro() {
        let m = pentium_pro();
        let mut s = System::new(m.clone(), 1);
        let a = s.access(0, read(0), Phase::Execution);
        let i = s.access(
            0,
            Access {
                addr: 1 << 20,
                bytes: 8,
                op: Op::Read,
                class: StreamClass::Indirect,
            },
            Phase::Execution,
        );
        assert!(i > a, "indirect miss {i} should exceed affine miss {a}");
    }

    #[test]
    fn l3_serves_l2_overflow_on_the_modern_machine() {
        use crate::config::modern;
        let m = modern();
        let mut s = System::new(m.clone(), 1);
        // Walk 1MB (exceeds the 512KB L2, fits the 8MB L3) twice.
        for _ in 0..2 {
            for i in 0..(1 << 20) / 64u64 {
                s.access(0, read(i * 64), Phase::Execution);
            }
        }
        let t = s.snapshot().total();
        assert!(t.l3.hits > 0, "second sweep must hit the L3");
        // L3 present: second sweep costs L3 latency, not memory.
        assert!(s.in_l3(0, 0));
        let warm = s.access(0, read(1 << 19), Phase::Execution);
        let expect_max = (m.l1.latency + m.l2.latency) as f64 + m.l3.unwrap().latency as f64;
        assert!(
            warm <= expect_max + 1e-9,
            "L3 hit cost {warm} > {expect_max}"
        );
    }

    #[test]
    fn machines_without_l3_report_zero_l3_traffic() {
        let mut s = System::new(pentium_pro(), 1);
        for i in 0..1000u64 {
            s.access(0, read(i * 32), Phase::Execution);
        }
        let t = s.snapshot().total();
        assert_eq!(t.l3.hits + t.l3.misses, 0);
        assert!(!s.in_l3(0, 0));
    }

    #[test]
    fn modern_write_invalidates_l3_copies_too() {
        use crate::config::modern;
        let mut s = System::new(modern(), 2);
        // Fill proc 1's caches, then overflow its L1/L2 so the line lives
        // only in L3.
        s.access(1, read(0), Phase::Execution);
        for i in 1..=(600 * 1024 / 64) as u64 {
            s.access(1, read(i * 64), Phase::Execution);
        }
        assert!(s.in_l3(1, 0));
        s.access(0, write(0), Phase::Execution);
        assert!(
            !s.in_l3(1, 0),
            "L3 copy must be invalidated by a remote write"
        );
    }

    #[test]
    fn charge_accumulates_compute_cycles() {
        let mut s = System::new(pentium_pro(), 2);
        s.charge(1, 123.5);
        let snap = s.snapshot();
        assert_eq!(snap.procs[1].cycles, 123.5);
        assert_eq!(snap.procs[0].cycles, 0.0);
    }
}

//! Counters collected by the simulator.
//!
//! Everything is cumulative; consumers take [`Snapshot`]s and subtract them
//! to attribute costs to phases (helper vs. execution) without the cache
//! model having to know what a "phase" is.

/// Hit/miss counters for one cache level.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that found the line resident.
    pub hits: u64,
    /// Accesses that had to fill the line.
    pub misses: u64,
    /// Dirty lines displaced by fills.
    pub writebacks: u64,
    /// Lines removed by coherence invalidations.
    pub invalidations: u64,
}

impl LevelStats {
    /// Total accesses observed.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }

    /// Component-wise difference `self - earlier` (for phase attribution).
    pub fn since(&self, earlier: &LevelStats) -> LevelStats {
        LevelStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            writebacks: self.writebacks - earlier.writebacks,
            invalidations: self.invalidations - earlier.invalidations,
        }
    }
}

/// Cumulative per-processor counters: both cache levels plus cycle and
/// traffic accounting maintained by the system model.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ProcStats {
    /// L1 data cache counters.
    pub l1: LevelStats,
    /// L2 cache counters.
    pub l2: LevelStats,
    /// L3 cache counters (zero on machines without an L3).
    pub l3: LevelStats,
    /// Exposed cycles charged to this processor.
    pub cycles: f64,
    /// Lines fetched from main memory (or a remote cache).
    pub mem_lines: u64,
    /// Lines fetched that were dirty in a remote cache.
    pub remote_dirty_lines: u64,
    /// TLB misses (0 when the machine does not model a TLB).
    pub tlb_misses: u64,
}

impl ProcStats {
    /// Component-wise difference `self - earlier`.
    pub fn since(&self, earlier: &ProcStats) -> ProcStats {
        ProcStats {
            l1: self.l1.since(&earlier.l1),
            l2: self.l2.since(&earlier.l2),
            l3: self.l3.since(&earlier.l3),
            cycles: self.cycles - earlier.cycles,
            mem_lines: self.mem_lines - earlier.mem_lines,
            remote_dirty_lines: self.remote_dirty_lines - earlier.remote_dirty_lines,
            tlb_misses: self.tlb_misses - earlier.tlb_misses,
        }
    }
}

/// A point-in-time copy of every processor's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// One entry per processor, in processor order.
    pub procs: Vec<ProcStats>,
}

impl Snapshot {
    /// Difference of whole snapshots (must have equal processor counts).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        assert_eq!(
            self.procs.len(),
            earlier.procs.len(),
            "snapshot shape mismatch"
        );
        Snapshot {
            procs: self
                .procs
                .iter()
                .zip(&earlier.procs)
                .map(|(now, then)| now.since(then))
                .collect(),
        }
    }

    /// Sum of all processors' counters.
    pub fn total(&self) -> ProcStats {
        let mut t = ProcStats::default();
        for p in &self.procs {
            t.l1.hits += p.l1.hits;
            t.l1.misses += p.l1.misses;
            t.l1.writebacks += p.l1.writebacks;
            t.l1.invalidations += p.l1.invalidations;
            t.l2.hits += p.l2.hits;
            t.l2.misses += p.l2.misses;
            t.l2.writebacks += p.l2.writebacks;
            t.l2.invalidations += p.l2.invalidations;
            t.l3.hits += p.l3.hits;
            t.l3.misses += p.l3.misses;
            t.l3.writebacks += p.l3.writebacks;
            t.l3.invalidations += p.l3.invalidations;
            t.cycles += p.cycles;
            t.mem_lines += p.mem_lines;
            t.remote_dirty_lines += p.remote_dirty_lines;
            t.tlb_misses += p.tlb_misses;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_delta_subtracts_componentwise() {
        let a = LevelStats {
            hits: 10,
            misses: 4,
            writebacks: 1,
            invalidations: 0,
        };
        let b = LevelStats {
            hits: 25,
            misses: 9,
            writebacks: 3,
            invalidations: 2,
        };
        let d = b.since(&a);
        assert_eq!(
            d,
            LevelStats {
                hits: 15,
                misses: 5,
                writebacks: 2,
                invalidations: 2
            }
        );
    }

    #[test]
    fn miss_ratio_handles_zero_accesses() {
        assert_eq!(LevelStats::default().miss_ratio(), 0.0);
        let s = LevelStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn snapshot_total_sums_processors() {
        let p = ProcStats {
            l1: LevelStats {
                hits: 1,
                misses: 2,
                ..Default::default()
            },
            l2: LevelStats {
                hits: 3,
                misses: 4,
                ..Default::default()
            },
            l3: LevelStats {
                hits: 5,
                misses: 6,
                ..Default::default()
            },
            cycles: 10.0,
            mem_lines: 4,
            remote_dirty_lines: 1,
            tlb_misses: 2,
        };
        let snap = Snapshot {
            procs: vec![p, p, p],
        };
        let t = snap.total();
        assert_eq!(t.l1.misses, 6);
        assert_eq!(t.l2.hits, 9);
        assert_eq!(t.l3.misses, 18);
        assert_eq!(t.mem_lines, 12);
        assert_eq!(t.tlb_misses, 6);
        assert!((t.cycles - 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn snapshot_delta_rejects_shape_mismatch() {
        let a = Snapshot {
            procs: vec![ProcStats::default()],
        };
        let b = Snapshot { procs: vec![] };
        let _ = a.since(&b);
    }
}

//! The field grid of the 1-D electrostatic PIC model and its (perfectly
//! parallelizable) field solve — the "parallel section" that surrounds
//! the unparallelizable particle loops in a real code like wave5.

/// A periodic 1-D grid with cell-centred charge density and electric
/// field, in normalized units (plasma frequency = 1).
#[derive(Debug, Clone)]
pub struct Grid {
    /// Number of cells.
    pub ng: usize,
    /// Domain length.
    pub length: f64,
    /// Charge density per cell (electrons + neutralizing background).
    pub rho: Vec<f64>,
    /// Electric field per cell.
    pub ex: Vec<f64>,
}

impl Grid {
    /// A zero-field grid.
    pub fn new(ng: usize, length: f64) -> Self {
        assert!(ng >= 4, "grid too small");
        assert!(length > 0.0);
        Grid {
            ng,
            length,
            rho: vec![0.0; ng],
            ex: vec![0.0; ng],
        }
    }

    /// Cell width.
    #[inline]
    pub fn dx(&self) -> f64 {
        self.length / self.ng as f64
    }

    /// Reset the charge density to the neutralizing ion background
    /// (+1 per unit length in normalized units).
    pub fn clear_rho(&mut self) {
        for r in &mut self.rho {
            *r = 1.0;
        }
    }

    /// Solve for the field from the deposited charge: in 1-D Gauss's law
    /// is `dE/dx = rho`. Integration gives the field at cell *edges*;
    /// averaging adjacent edges yields the cell-centred field, which
    /// equals the centred potential difference `(phi[j-1]-phi[j+1])/2dx`
    /// — the classic momentum-conserving scheme when the gather uses the
    /// same CIC weights as the deposit (Birdsall & Langdon §4-4).
    ///
    /// This loop is trivially parallelizable (a scan + a normalization) —
    /// it is the part of the application the compiler *can* handle, kept
    /// sequential here only because this host's CPU count is irrelevant
    /// to the demonstration.
    pub fn solve_field(&mut self) {
        let dx = self.dx();
        // Edge field E_{j+1/2} by cumulative integration.
        let mut acc = 0.0;
        let mut edge: Vec<f64> = self
            .rho
            .iter()
            .map(|r| {
                acc += r * dx;
                acc
            })
            .collect();
        let mean = edge.iter().sum::<f64>() / self.ng as f64;
        for e in &mut edge {
            *e -= mean;
        }
        // Cell-centred field = average of the bounding edges.
        for (j, e) in self.ex.iter_mut().enumerate() {
            let left = edge[(j + self.ng - 1) % self.ng];
            *e = 0.5 * (left + edge[j]);
        }
    }

    /// Field energy `1/2 ∫ E² dx`.
    pub fn field_energy(&self) -> f64 {
        0.5 * self.dx() * self.ex.iter().map(|e| e * e).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_charge_gives_zero_field() {
        let mut g = Grid::new(64, 2.0 * std::f64::consts::PI);
        g.clear_rho(); // background only, no electrons: rho = +1
                       // A *uniform* rho integrates to a linear E, but the periodic
                       // zero-mean gauge cannot represent it; physical setups always
                       // deposit electrons summing to -background. Use neutral rho = 0.
        for r in &mut g.rho {
            *r = 0.0;
        }
        g.solve_field();
        assert!(g.ex.iter().all(|e| e.abs() < 1e-12));
        assert_eq!(g.field_energy(), 0.0);
    }

    #[test]
    fn sinusoidal_charge_gives_sinusoidal_field() {
        // rho = cos(kx) -> E = sin(kx)/k (up to discretization).
        let ng = 256;
        let l = 2.0 * std::f64::consts::PI;
        let mut g = Grid::new(ng, l);
        let k = 1.0;
        for j in 0..ng {
            let x = (j as f64 + 0.5) * g.dx();
            g.rho[j] = (k * x).cos();
        }
        g.solve_field();
        for j in (0..ng).step_by(17) {
            let x = (j as f64 + 1.0) * g.dx();
            let expect = (k * x).sin() / k;
            assert!(
                (g.ex[j] - expect).abs() < 0.05,
                "E[{j}] = {} vs {expect}",
                g.ex[j]
            );
        }
    }

    #[test]
    fn field_energy_is_nonnegative_and_scales() {
        let mut g = Grid::new(64, 1.0);
        g.ex.iter_mut().for_each(|e| *e = 2.0);
        let w = g.field_energy();
        assert!((w - 0.5 * 4.0).abs() < 1e-12, "1/2 * E^2 * L = 2: {w}");
    }
}

//! # cascade-pic-app — a real application using cascaded execution
//!
//! The paper's context is a compiler-parallelized application whose
//! *unparallelizable* loops (wave5's particle mover) bottleneck it. This
//! crate is that situation in miniature, as a real program: a 1-D
//! electrostatic particle-in-cell plasma simulation whose
//!
//! * field solve is a trivially parallel section, and whose
//! * particle loops (charge deposition — an order-sensitive scatter-add —
//!   and the gather/push) are the sequential-semantics loops that run
//!   under [`cascade_rt`]'s cascaded runtime, with hand-written
//!   [`cascade_rt::RealKernel`] implementations (not the generic spec
//!   interpreter).
//!
//! The physics is validated, not decorative: cold plasma oscillations
//! ring at the plasma frequency, total energy is conserved to leapfrog
//! accuracy, momentum is conserved, and the two-stream instability grows
//! — while the cascaded mover stays bitwise identical to sequential
//! execution.
//!
//! ```
//! use cascade_pic_app::{Grid, MoverMode, Particles, PicConfig, Simulation};
//!
//! let length = 2.0 * std::f64::consts::PI;
//! let mut sim = Simulation::new(
//!     Grid::new(64, length),
//!     Particles::plasma_oscillation(2048, length, 0.02, 1.0),
//!     PicConfig { dt: 0.05, mover: MoverMode::Sequential },
//! );
//! let diags = sim.run(10);
//! assert!(diags.iter().all(|d| d.total() > 0.0));
//! ```

#![warn(missing_docs)]

pub mod grid;
pub mod kernels;
pub mod particles;
pub mod sim;

pub use grid::Grid;
pub use kernels::{DepositKernel, PushKernel, SimState};
pub use particles::Particles;
pub use sim::{estimate_period, MoverMode, PicConfig, Simulation, StepDiagnostics};

//! Particle state and loading for the 1-D electrostatic model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The electron population (a neutralizing ion background lives in
/// [`crate::grid::Grid::clear_rho`]). Normalized so the plasma frequency
/// is 1: charge per particle `-L/np`, mass `L/np` (q/m = -1).
#[derive(Debug, Clone)]
pub struct Particles {
    /// Positions in [0, L).
    pub x: Vec<f64>,
    /// Velocities.
    pub v: Vec<f64>,
    /// Domain length (for wrapping).
    pub length: f64,
}

impl Particles {
    /// Charge per particle.
    #[inline]
    pub fn charge(&self) -> f64 {
        -self.length / self.x.len() as f64
    }

    /// Charge-to-mass ratio (normalized electrons).
    #[inline]
    pub const fn charge_over_mass() -> f64 {
        -1.0
    }

    /// Load a uniform (quiet-start) population with a sinusoidal position
    /// perturbation of amplitude `amp` and mode number `mode` — the
    /// classic cold plasma-oscillation setup.
    pub fn plasma_oscillation(np: usize, length: f64, amp: f64, mode: f64) -> Self {
        assert!(np >= 16);
        let k = 2.0 * std::f64::consts::PI * mode / length;
        let x = (0..np)
            .map(|i| {
                let x0 = (i as f64 + 0.5) * length / np as f64;
                (x0 + amp * (k * x0).sin()).rem_euclid(length)
            })
            .collect();
        Particles {
            x,
            v: vec![0.0; np],
            length,
        }
    }

    /// Load two counter-streaming beams (the two-stream instability
    /// setup): half the particles at `+v0`, half at `-v0`, with a tiny
    /// seeded position jitter to trigger the instability.
    pub fn two_stream(np: usize, length: f64, v0: f64, seed: u64) -> Self {
        assert!(np >= 16 && np.is_multiple_of(2));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(np);
        let mut v = Vec::with_capacity(np);
        for i in 0..np {
            let x0 = (i as f64 + 0.5) * length / np as f64;
            let jitter: f64 = rng.gen_range(-1e-4f64..1e-4) * length;
            x.push((x0 + jitter).rem_euclid(length));
            v.push(if i % 2 == 0 { v0 } else { -v0 });
        }
        Particles { x, v, length }
    }

    /// Number of particles.
    #[inline]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when empty (never, for valid loads).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Total kinetic energy `Σ m v² / 2`.
    pub fn kinetic_energy(&self) -> f64 {
        let m = self.length / self.len() as f64;
        0.5 * m * self.v.iter().map(|v| v * v).sum::<f64>()
    }

    /// Total momentum `Σ m v`.
    pub fn momentum(&self) -> f64 {
        let m = self.length / self.len() as f64;
        m * self.v.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_start_is_cold_and_in_bounds() {
        let p = Particles::plasma_oscillation(1000, 10.0, 0.01, 1.0);
        assert_eq!(p.len(), 1000);
        assert!(p.x.iter().all(|&x| (0.0..10.0).contains(&x)));
        assert_eq!(p.kinetic_energy(), 0.0);
        assert_eq!(p.momentum(), 0.0);
    }

    #[test]
    fn normalization_gives_unit_plasma_frequency() {
        // omega_p^2 = n q^2 / m with n = np/L: (np/L)(L/np)^2/(L/np) = 1.
        let p = Particles::plasma_oscillation(512, 7.0, 0.0, 1.0);
        let n = p.len() as f64 / p.length;
        let q = p.charge().abs();
        let m = p.length / p.len() as f64;
        let wp2 = n * q * q / m;
        assert!((wp2 - 1.0).abs() < 1e-12, "omega_p^2 = {wp2}");
    }

    #[test]
    fn two_stream_has_zero_net_momentum() {
        let p = Particles::two_stream(1024, 10.0, 0.5, 3);
        assert!(p.momentum().abs() < 1e-12);
        assert!(p.kinetic_energy() > 0.0);
    }
}

//! The timestep driver: parallel-section field solves around cascaded
//! (or sequential) particle loops — the structure of a compiler-
//! parallelized wave5 run, in miniature.

use cascade_rt::{run_cascaded, RealKernel, RtPolicy, RunnerConfig};

use crate::grid::Grid;
use crate::kernels::{DepositKernel, PushKernel, SimState};
use crate::particles::Particles;

/// How the particle loops execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoverMode {
    /// Plain sequential execution (the baseline).
    Sequential,
    /// Cascaded execution on real threads.
    Cascaded {
        /// Worker threads.
        threads: usize,
        /// Particles per chunk.
        chunk: u64,
        /// Helper policy.
        policy: RtPolicy,
    },
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct PicConfig {
    /// Timestep (normalized; the plasma frequency is 1).
    pub dt: f64,
    /// Mover execution mode.
    pub mover: MoverMode,
}

/// Per-step diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDiagnostics {
    /// Kinetic energy after the step.
    pub kinetic: f64,
    /// Field energy after the step.
    pub field: f64,
    /// Total momentum after the step.
    pub momentum: f64,
}

impl StepDiagnostics {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.field
    }
}

/// A runnable 1-D electrostatic PIC simulation.
pub struct Simulation {
    state: SimState,
    cfg: PicConfig,
}

impl Simulation {
    /// Assemble a simulation.
    pub fn new(grid: Grid, particles: Particles, cfg: PicConfig) -> Self {
        assert!(
            cfg.dt > 0.0 && cfg.dt < 1.0,
            "dt must resolve the plasma frequency"
        );
        Simulation {
            state: SimState::new(grid, particles),
            cfg,
        }
    }

    fn run_kernel<K: RealKernel>(&self, kernel: &K, mode: MoverMode) {
        match mode {
            MoverMode::Sequential => {
                // SAFETY: `&self` is exclusive here (only step() calls us,
                // taking &mut self), so single-threaded execution is
                // trivially serialized.
                unsafe { kernel.execute(0..kernel.iters()) };
            }
            MoverMode::Cascaded {
                threads,
                chunk,
                policy,
            } => {
                run_cascaded(
                    kernel,
                    &RunnerConfig {
                        nthreads: threads,
                        iters_per_chunk: chunk,
                        policy,
                        poll_batch: 64,
                    },
                );
            }
        }
    }

    /// Advance one timestep: deposit (sequential-semantics loop), field
    /// solve (parallel section), push (sequential-semantics loop).
    pub fn step(&mut self) -> StepDiagnostics {
        let mover = self.cfg.mover;
        self.state.grid_mut().clear_rho();
        let deposit = DepositKernel::new(&self.state);
        self.run_kernel(&deposit, mover);

        self.state.grid_mut().solve_field();

        let push = PushKernel::new(&self.state, self.cfg.dt);
        self.run_kernel(&push, mover);

        self.diagnostics()
    }

    /// Advance `steps` timesteps, collecting diagnostics.
    pub fn run(&mut self, steps: usize) -> Vec<StepDiagnostics> {
        (0..steps).map(|_| self.step()).collect()
    }

    /// Current diagnostics without stepping.
    pub fn diagnostics(&mut self) -> StepDiagnostics {
        let kinetic = self.state.particles().kinetic_energy();
        let field = self.state.grid().field_energy();
        let momentum = self.state.particles().momentum();
        StepDiagnostics {
            kinetic,
            field,
            momentum,
        }
    }

    /// Bit patterns of the particle state (for equivalence tests).
    pub fn particle_bits(&mut self) -> Vec<u64> {
        let p = self.state.particles();
        p.x.iter().chain(p.v.iter()).map(|v| v.to_bits()).collect()
    }
}

/// Estimate the oscillation period of a signal from the spacing of its
/// rising zero crossings (about its mean). Returns `None` when fewer than
/// two crossings exist.
pub fn estimate_period(signal: &[f64], dt: f64) -> Option<f64> {
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let mut crossings = Vec::new();
    for i in 1..signal.len() {
        let (a, b) = (signal[i - 1] - mean, signal[i] - mean);
        if a <= 0.0 && b > 0.0 {
            // Linear interpolation of the crossing time.
            let frac = -a / (b - a);
            crossings.push((i as f64 - 1.0 + frac) * dt);
        }
    }
    if crossings.len() < 2 {
        return None;
    }
    let spans: Vec<f64> = crossings.windows(2).map(|w| w[1] - w[0]).collect();
    Some(spans.iter().sum::<f64>() / spans.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oscillation_sim(mover: MoverMode) -> Simulation {
        let length = 2.0 * std::f64::consts::PI;
        let grid = Grid::new(128, length);
        let particles = Particles::plasma_oscillation(8192, length, 0.02, 1.0);
        Simulation::new(grid, particles, PicConfig { dt: 0.05, mover })
    }

    #[test]
    fn plasma_oscillation_frequency_is_omega_p() {
        // Field energy of a cold oscillation at omega_p = 1 oscillates
        // with period pi (energy goes at twice the field frequency).
        let mut sim = oscillation_sim(MoverMode::Sequential);
        let diags = sim.run(400);
        let energy: Vec<f64> = diags.iter().map(|d| d.field).collect();
        let period = estimate_period(&energy, 0.05).expect("oscillation expected");
        let expect = std::f64::consts::PI;
        assert!(
            (period - expect).abs() / expect < 0.08,
            "energy period {period:.3} vs pi (plasma frequency off)"
        );
    }

    #[test]
    fn energy_is_conserved_to_leapfrog_accuracy() {
        // Leapfrog total energy *oscillates* within a step (kinetic and
        // field energies are sampled half a step apart) but must not
        // drift secularly: compare the mean of the first and last
        // quarters of the run.
        let mut sim = oscillation_sim(MoverMode::Sequential);
        let diags = sim.run(400);
        let mean =
            |s: &[StepDiagnostics]| s.iter().map(|d| d.total()).sum::<f64>() / s.len() as f64;
        let early = mean(&diags[..100]);
        let late = mean(&diags[300..]);
        let drift = (late - early).abs() / early;
        assert!(
            drift < 0.02,
            "secular energy drift {:.2}% (early {early:.3e}, late {late:.3e})",
            drift * 100.0
        );
        // And the in-step oscillation stays bounded.
        let (min, max) = diags[5..]
            .iter()
            .map(|d| d.total())
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), e| {
                (lo.min(e), hi.max(e))
            });
        assert!((max - min) / early < 0.3, "energy ripple out of bounds");
    }

    #[test]
    fn momentum_is_conserved() {
        // CIC deposition with a cell-centred field has a small known
        // self-force; net momentum must stay tiny relative to the
        // characteristic momentum (total mass x velocity amplitude).
        let mut sim = oscillation_sim(MoverMode::Sequential);
        let diags = sim.run(200);
        let p_char = 2.0 * std::f64::consts::PI * 0.02; // m_total * v_amp
        for d in &diags {
            assert!(
                d.momentum.abs() / p_char < 1e-3,
                "net momentum appeared: {} ({:.2e} of characteristic)",
                d.momentum,
                d.momentum.abs() / p_char
            );
        }
    }

    #[test]
    fn cascaded_mover_is_bitwise_sequential() {
        let mut seq = oscillation_sim(MoverMode::Sequential);
        seq.run(25);
        let expected = seq.particle_bits();
        for policy in [RtPolicy::None, RtPolicy::Prefetch] {
            let mut casc = oscillation_sim(MoverMode::Cascaded {
                threads: 3,
                chunk: 509,
                policy,
            });
            casc.run(25);
            assert_eq!(casc.particle_bits(), expected, "policy {policy:?} diverged");
        }
    }

    #[test]
    fn two_stream_instability_grows_field_energy() {
        // Counter-streaming beams are unstable: field energy must grow by
        // orders of magnitude from the seeded noise, then saturate.
        let length = 2.0 * std::f64::consts::PI * 2.0;
        let grid = Grid::new(128, length);
        let particles = Particles::two_stream(16384, length, 1.0, 7);
        let mut sim = Simulation::new(
            grid,
            particles,
            PicConfig {
                dt: 0.05,
                mover: MoverMode::Sequential,
            },
        );
        let diags = sim.run(600);
        let early = diags[10].field;
        let late = diags
            .iter()
            .skip(200)
            .map(|d| d.field)
            .fold(0.0f64, f64::max);
        assert!(
            late > early * 100.0,
            "two-stream field energy must grow: early {early:.3e}, late {late:.3e}"
        );
    }

    #[test]
    fn period_estimator_on_a_known_sine() {
        let dt = 0.01;
        let signal: Vec<f64> = (0..2000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 * dt / 0.7).sin())
            .collect();
        let p = estimate_period(&signal, dt).unwrap();
        assert!((p - 0.7).abs() < 0.01, "period {p}");
    }
}

//! The unparallelizable particle loops as [`RealKernel`]s.
//!
//! These are the production-shaped counterparts of wave5's PARMVR loops:
//!
//! * [`DepositKernel`] — charge deposition `rho(cell(x_i)) += w` with CIC
//!   (cloud-in-cell) weighting: a colliding floating-point scatter-add,
//!   order-sensitive, therefore sequential;
//! * [`PushKernel`] — field gather + velocity/position update: per
//!   particle independent in exact arithmetic, but the indirect gather
//!   defeats compile-time analysis, which is precisely the population the
//!   paper targets.
//!
//! Both keep the simulation state behind `UnsafeCell` and rely on the
//! cascade runner's token protocol for exclusivity (see
//! `cascade-rt::RealKernel`'s contract).

use std::cell::UnsafeCell;
use std::ops::Range;

use cascade_rt::{prefetch_range, RealKernel};

use crate::grid::Grid;
use crate::particles::Particles;

/// Shared simulation state, mutated only under the cascade token (or via
/// `&mut` access between phases).
pub struct SimState {
    grid: UnsafeCell<Grid>,
    particles: UnsafeCell<Particles>,
}

// SAFETY: interior mutation happens only inside `RealKernel::execute*`
// calls (serialized by the runner's token with Release/Acquire edges) or
// through `&mut self` methods; helper-phase reads touch only data the
// running loop does not write at overlapping indices (argued at each
// site below).
unsafe impl Sync for SimState {}

impl SimState {
    /// Wrap the initial state.
    pub fn new(grid: Grid, particles: Particles) -> Self {
        assert!(
            (grid.length - particles.length).abs() < 1e-12,
            "grid and particles must share the domain length"
        );
        SimState {
            grid: UnsafeCell::new(grid),
            particles: UnsafeCell::new(particles),
        }
    }

    /// Exclusive access to the grid (borrow-checked: no kernels alive).
    pub fn grid_mut(&mut self) -> &mut Grid {
        self.grid.get_mut()
    }

    /// Exclusive access to the particles.
    pub fn particles_mut(&mut self) -> &mut Particles {
        self.particles.get_mut()
    }

    /// Shared read access to the grid (borrow-checked).
    pub fn grid(&mut self) -> &Grid {
        self.grid.get_mut()
    }

    /// Shared read access to the particles.
    pub fn particles(&mut self) -> &Particles {
        self.particles.get_mut()
    }
}

/// Cloud-in-cell deposition: each particle spreads its charge over the
/// two nearest cells.
pub struct DepositKernel<'a> {
    state: &'a SimState,
}

impl<'a> DepositKernel<'a> {
    /// Borrow the state for one deposition pass. `rho` must already hold
    /// the ion background.
    pub fn new(state: &'a SimState) -> Self {
        DepositKernel { state }
    }
}

impl<'a> RealKernel for DepositKernel<'a> {
    fn iters(&self) -> u64 {
        // SAFETY: reading the particle count; no kernel resizes the
        // population.
        unsafe { (*self.state.particles.get()).x.len() as u64 }
    }

    unsafe fn execute(&self, range: Range<u64>) {
        // SAFETY: token-exclusive per the trait contract; this loop
        // writes only `rho` and reads only `x` (which no deposit chunk
        // writes).
        let grid = unsafe { &mut *self.state.grid.get() };
        let particles = unsafe { &*self.state.particles.get() };
        let dx = grid.dx();
        let ng = grid.ng;
        let qw = particles.charge() / dx; // charge density contribution
        for i in range {
            let xp = particles.x[i as usize] / dx;
            let j = xp.floor() as usize % ng;
            let w = xp - xp.floor();
            grid.rho[j] += qw * (1.0 - w);
            grid.rho[(j + 1) % ng] += qw * w;
        }
    }

    fn prefetch_iter(&self, i: u64) {
        // SAFETY: `x` is read-only during deposition (the executor writes
        // only `rho`), and `rho` is merely hinted.
        let particles = unsafe { &*self.state.particles.get() };
        let grid = unsafe { &*self.state.grid.get() };
        let xp = particles.x[i as usize] / grid.dx();
        let j = (xp.floor() as usize) % grid.ng;
        prefetch_range(grid.rho[j..].as_ptr() as *const u8, 16);
    }
}

/// Field gather + leapfrog push with periodic wrap.
pub struct PushKernel<'a> {
    state: &'a SimState,
    dt: f64,
}

impl<'a> PushKernel<'a> {
    /// Borrow the state for one push pass with timestep `dt`.
    pub fn new(state: &'a SimState, dt: f64) -> Self {
        assert!(dt > 0.0);
        PushKernel { state, dt }
    }
}

impl<'a> RealKernel for PushKernel<'a> {
    fn iters(&self) -> u64 {
        // SAFETY: as in DepositKernel::iters.
        unsafe { (*self.state.particles.get()).x.len() as u64 }
    }

    unsafe fn execute(&self, range: Range<u64>) {
        // SAFETY: token-exclusive; writes x[i], v[i] for i in this chunk
        // only; reads the field (not written by this loop).
        let grid = unsafe { &*self.state.grid.get() };
        let particles = unsafe { &mut *self.state.particles.get() };
        let dx = grid.dx();
        let ng = grid.ng;
        let length = particles.length;
        let qm = Particles::charge_over_mass();
        for i in range {
            let i = i as usize;
            let xp = particles.x[i] / dx;
            let j = xp.floor() as usize % ng;
            let w = xp - xp.floor();
            let e = (1.0 - w) * grid.ex[j] + w * grid.ex[(j + 1) % ng];
            particles.v[i] += qm * e * self.dt;
            particles.x[i] = (particles.x[i] + particles.v[i] * self.dt).rem_euclid(length);
        }
    }

    fn prefetch_iter(&self, i: u64) {
        // SAFETY: the executor of another chunk writes x/v only at *its*
        // indices (disjoint from ours); reading our own x[i] races with
        // nothing. Field cells are read-only during the push.
        let particles = unsafe { &*self.state.particles.get() };
        let grid = unsafe { &*self.state.grid.get() };
        let i = i as usize;
        prefetch_range(particles.v[i..].as_ptr() as *const u8, 8);
        let xp = particles.x[i] / grid.dx();
        let j = (xp.floor() as usize) % grid.ng;
        prefetch_range(grid.ex[j..].as_ptr() as *const u8, 16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(np: usize, ng: usize) -> SimState {
        let length = 2.0 * std::f64::consts::PI;
        let grid = Grid::new(ng, length);
        let particles = Particles::plasma_oscillation(np, length, 0.01, 1.0);
        SimState::new(grid, particles)
    }

    #[test]
    fn deposition_conserves_total_charge() {
        let mut s = state(4096, 64);
        s.grid_mut().clear_rho();
        let k = DepositKernel::new(&s);
        // SAFETY: single-threaded.
        unsafe { k.execute(0..k.iters()) };
        let dx = s.grid().dx();
        let total: f64 = s.grid().rho.iter().sum::<f64>() * dx;
        // Background (+L) plus electrons (-L) = 0.
        assert!(total.abs() < 1e-9, "net charge {total}");
    }

    #[test]
    fn push_moves_nothing_in_zero_field() {
        let mut s = state(1024, 64);
        // Field is zero by construction (never solved).
        let x0 = s.particles().x.clone();
        let k = PushKernel::new(&s, 0.1);
        // SAFETY: single-threaded.
        unsafe { k.execute(0..k.iters()) };
        assert_eq!(s.particles().x, x0, "zero field, zero velocity: no motion");
    }

    #[test]
    fn prefetch_mutates_nothing() {
        let mut s = state(512, 32);
        s.grid_mut().clear_rho();
        let rho0 = s.grid().rho.clone();
        let x0 = s.particles().x.clone();
        let dep = DepositKernel::new(&s);
        let push = PushKernel::new(&s, 0.1);
        for i in 0..512 {
            dep.prefetch_iter(i);
            push.prefetch_iter(i);
        }
        assert_eq!(s.grid().rho, rho0);
        assert_eq!(s.particles().x, x0);
    }

    #[test]
    fn deposit_is_order_sensitive_in_principle() {
        // Two deposits in different chunk orders may differ bitwise when
        // particles collide on cells — confirm the same order gives the
        // same bits (determinism baseline for the cascade tests).
        let run = || {
            let mut s = state(2048, 16); // heavy collisions: 128 particles/cell
            s.grid_mut().clear_rho();
            let k = DepositKernel::new(&s);
            // SAFETY: single-threaded.
            unsafe { k.execute(0..k.iters()) };
            s.grid().rho.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

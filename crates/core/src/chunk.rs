//! Chunk planning (§2.2): converting a byte budget per execution phase into
//! contiguous iteration ranges.
//!
//! The paper chooses the chunk size "based on an estimate of the number of
//! bytes of data that each iteration of the execution loop will touch"; we
//! take that estimate from [`LoopSpec::bytes_per_iter`].

use std::ops::Range;

use cascade_trace::LoopSpec;

/// A partition of a loop's iteration space into contiguous chunks of
/// approximately `chunk_bytes` of touched data each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    iters: u64,
    iters_per_chunk: u64,
}

impl ChunkPlan {
    /// Plan chunks for `spec` with the given byte budget per chunk, where
    /// footprint is estimated at `line`-byte cache-line granularity (what
    /// an iteration *pulls into the cache*, per §2.2). At least one
    /// iteration is always placed per chunk, even when a single iteration
    /// exceeds the budget.
    pub fn new(spec: &LoopSpec, chunk_bytes: u64, line: u64) -> Self {
        assert!(chunk_bytes > 0, "chunk byte budget must be positive");
        let bpi = spec.line_footprint_per_iter(line).max(1);
        ChunkPlan {
            iters: spec.iters,
            iters_per_chunk: (chunk_bytes / bpi).max(1),
        }
    }

    /// Plan with an explicit iteration count per chunk (used by tests and
    /// the real-thread runtime, which chunk by iterations directly).
    pub fn by_iterations(iters: u64, iters_per_chunk: u64) -> Self {
        assert!(iters_per_chunk > 0, "iterations per chunk must be positive");
        ChunkPlan {
            iters,
            iters_per_chunk,
        }
    }

    /// Total number of chunks.
    #[inline]
    pub fn num_chunks(&self) -> u64 {
        self.iters.div_ceil(self.iters_per_chunk)
    }

    /// Iterations per (full) chunk.
    #[inline]
    pub fn iters_per_chunk(&self) -> u64 {
        self.iters_per_chunk
    }

    /// Total iterations covered.
    #[inline]
    pub fn iters(&self) -> u64 {
        self.iters
    }

    /// The iteration range of chunk `j` (the last chunk may be short).
    pub fn range(&self, j: u64) -> Range<u64> {
        debug_assert!(j < self.num_chunks(), "chunk {j} out of range");
        let lo = j * self.iters_per_chunk;
        lo..(lo + self.iters_per_chunk).min(self.iters)
    }

    /// Iterate over all chunk ranges in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<u64>> + '_ {
        (0..self.num_chunks()).map(|j| self.range(j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_trace::{AddressSpace, Mode, Pattern, StreamRef};

    fn spec(iters: u64, bytes: u32) -> LoopSpec {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", bytes, iters);
        LoopSpec {
            name: "t".into(),
            iters,
            refs: vec![StreamRef {
                name: "a(i)",
                array: a,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes,
                hoistable: false,
            }],
            compute: 1.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        }
    }

    #[test]
    fn chunking_respects_byte_budget() {
        // Unit-stride 8-byte stream: 8 fresh bytes per iteration, so 64KB
        // chunks hold 8192 iterations.
        let p = ChunkPlan::new(&spec(100_000, 8), 64 * 1024, 32);
        assert_eq!(p.iters_per_chunk(), 8192);
        assert_eq!(p.num_chunks(), 13);
    }

    #[test]
    fn ranges_partition_the_iteration_space() {
        let p = ChunkPlan::new(&spec(100_000, 8), 64 * 1024, 32);
        let mut next = 0u64;
        for r in p.ranges() {
            assert_eq!(r.start, next, "ranges must be contiguous");
            assert!(r.end > r.start, "ranges must be non-empty");
            next = r.end;
        }
        assert_eq!(next, 100_000, "ranges must cover the whole space");
    }

    #[test]
    fn oversized_iterations_still_get_one_per_chunk() {
        // A 4096-byte element is clamped to one line of footprint per
        // iteration by the line-granular estimate, but the byte budget of
        // 32 still forces one iteration per chunk.
        let p = ChunkPlan::new(&spec(10, 4096), 32, 32);
        assert_eq!(p.iters_per_chunk(), 1);
        assert_eq!(p.num_chunks(), 10);
    }

    #[test]
    fn single_chunk_when_budget_exceeds_loop() {
        let p = ChunkPlan::new(&spec(100, 8), 1 << 20, 32);
        assert_eq!(p.num_chunks(), 1);
        assert_eq!(p.range(0), 0..100);
    }

    #[test]
    fn by_iterations_constructor() {
        let p = ChunkPlan::by_iterations(10, 3);
        assert_eq!(p.num_chunks(), 4);
        assert_eq!(p.range(3), 9..10);
    }
}

//! Result types produced by the simulators, and the speedup arithmetic used
//! by every figure of the paper.

use cascade_mem::{ProcStats, Snapshot};

use crate::policy::HelperPolicy;
use crate::timeline::Timeline;

/// Counters attributed to one kind of phase (execution or helper) of one
/// loop, summed over all processors.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct PhaseTotals {
    /// Exposed cycles spent in phases of this kind (summed, not makespan).
    pub cycles: f64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// L2 cache misses.
    pub l2_misses: u64,
    /// L2 cache hits.
    pub l2_hits: u64,
    /// L3 cache misses (zero on machines without an L3).
    pub l3_misses: u64,
    /// Lines fetched from memory or a remote cache.
    pub mem_lines: u64,
    /// Lines fetched that were dirty in a remote cache.
    pub remote_dirty_lines: u64,
    /// TLB misses (0 unless the machine models a TLB).
    pub tlb_misses: u64,
}

impl PhaseTotals {
    /// Accumulate a snapshot delta (summed over processors) into `self`.
    pub fn add_delta(&mut self, delta: &Snapshot) {
        let t: ProcStats = delta.total();
        self.cycles += t.cycles;
        self.l1_misses += t.l1.misses;
        self.l1_hits += t.l1.hits;
        self.l2_misses += t.l2.misses;
        self.l2_hits += t.l2.hits;
        self.l3_misses += t.l3.misses;
        self.mem_lines += t.mem_lines;
        self.remote_dirty_lines += t.remote_dirty_lines;
        self.tlb_misses += t.tlb_misses;
    }
}

/// Per-loop result of one simulated configuration.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Loop name from the spec.
    pub name: String,
    /// Contribution of this loop to the run's critical path: wall cycles
    /// from the loop's start until its last chunk (and final control
    /// transfer) completed. For the sequential baseline this is simply the
    /// loop's execution time.
    pub cycles: f64,
    /// Execution-phase counters (what the paper's Figures 3-5 report).
    pub exec: PhaseTotals,
    /// Helper-phase counters (off the critical path; reported separately).
    pub helper: PhaseTotals,
    /// Number of chunks the loop was split into (= number of control
    /// transfers charged).
    pub chunks: u64,
    /// Chunks whose helper ran to completion before the token arrived.
    pub helper_complete: u64,
    /// Iterations covered by helper work (prefetched or packed).
    pub helper_iters: u64,
    /// Total iterations of the loop.
    pub iters: u64,
    /// Per-chunk schedule events (empty for the sequential baseline and
    /// the unbounded model, which have no multi-processor schedule).
    pub timeline: Timeline,
}

impl LoopReport {
    /// Fraction of iterations the helpers covered, in [0, 1].
    pub fn helper_coverage(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.helper_iters as f64 / self.iters as f64
        }
    }
}

/// Full result of simulating one configuration over a loop sequence.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Machine name (Table 1).
    pub machine: String,
    /// Helper policy label.
    pub policy: String,
    /// Processor count (1 for the sequential baseline; `u64::MAX` marks the
    /// unbounded-processor model of §3.4).
    pub nprocs: u64,
    /// Chunk byte budget (0 for the sequential baseline).
    pub chunk_bytes: u64,
    /// Per-loop results of the *measured* call (the paper measures call 12
    /// of ~5000; we measure the last of `calls`).
    pub loops: Vec<LoopReport>,
}

/// Marker value of [`RunReport::nprocs`] for the unbounded model.
pub const UNBOUNDED_PROCS: u64 = u64::MAX;

impl RunReport {
    /// Total critical-path cycles across all loops.
    pub fn total_cycles(&self) -> f64 {
        self.loops.iter().map(|l| l.cycles).sum()
    }

    /// Overall speedup of `self` relative to a baseline run over the same
    /// loops (paper Figure 2): ratio of total times.
    pub fn overall_speedup_vs(&self, baseline: &RunReport) -> f64 {
        assert_eq!(
            self.loops.len(),
            baseline.loops.len(),
            "loop count mismatch"
        );
        baseline.total_cycles() / self.total_cycles()
    }

    /// Per-loop speedups relative to a baseline run (paper Figure 3's data
    /// expressed as ratios).
    pub fn loop_speedups_vs(&self, baseline: &RunReport) -> Vec<f64> {
        assert_eq!(
            self.loops.len(),
            baseline.loops.len(),
            "loop count mismatch"
        );
        self.loops
            .iter()
            .zip(&baseline.loops)
            .map(|(mine, base)| base.cycles / mine.cycles)
            .collect()
    }

    /// Construct a human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} / {} / {} procs / {} KB chunks: {:.3e} cycles over {} loops",
            self.machine,
            self.policy,
            if self.nprocs == UNBOUNDED_PROCS {
                "unbounded".to_string()
            } else {
                self.nprocs.to_string()
            },
            self.chunk_bytes / 1024,
            self.total_cycles(),
            self.loops.len()
        )
    }
}

/// Shared run parameters for the cascading simulators.
#[derive(Debug, Clone)]
pub struct CascadeConfig {
    /// Number of processors cascading the loop (>= 2 for a real cascade).
    pub nprocs: usize,
    /// Chunk byte budget (§2.2); the paper's headline setting is 64KB.
    pub chunk_bytes: u64,
    /// Helper policy.
    pub policy: HelperPolicy,
    /// Jump out of an unfinished helper phase as soon as the token arrives
    /// (the §3.3 modification; the paper's published results enable it).
    pub jump_out: bool,
    /// How many times the loop sequence is invoked; the last call is
    /// measured (PARMVR is called ~5000 times; the paper measures call 12).
    pub calls: usize,
    /// Flush all caches between calls, modelling the application's
    /// intervening (parallel) phases displacing the loop data.
    pub flush_between_calls: bool,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            nprocs: 4,
            chunk_bytes: 64 * 1024,
            policy: HelperPolicy::Restructure { hoist: true },
            jump_out: true,
            calls: 2,
            flush_between_calls: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop_report(name: &str, cycles: f64) -> LoopReport {
        LoopReport {
            name: name.into(),
            cycles,
            exec: PhaseTotals::default(),
            helper: PhaseTotals::default(),
            chunks: 1,
            helper_complete: 1,
            helper_iters: 10,
            iters: 10,
            timeline: Timeline::default(),
        }
    }

    fn run(cycles: &[f64]) -> RunReport {
        RunReport {
            machine: "m".into(),
            policy: "p".into(),
            nprocs: 4,
            chunk_bytes: 65536,
            loops: cycles
                .iter()
                .enumerate()
                .map(|(i, &c)| loop_report(&format!("L{i}"), c))
                .collect(),
        }
    }

    #[test]
    fn overall_speedup_is_ratio_of_totals() {
        let base = run(&[100.0, 300.0]);
        let fast = run(&[50.0, 150.0]);
        assert!((fast.overall_speedup_vs(&base) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_loop_speedups() {
        let base = run(&[100.0, 300.0]);
        let fast = run(&[200.0, 100.0]);
        let s = fast.loop_speedups_vs(&base);
        assert!((s[0] - 0.5).abs() < 1e-12, "slowdowns are expressible too");
        assert!((s[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn helper_coverage_fraction() {
        let mut l = loop_report("x", 1.0);
        l.helper_iters = 5;
        assert!((l.helper_coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "loop count mismatch")]
    fn speedup_requires_matching_loops() {
        let _ = run(&[1.0]).overall_speedup_vs(&run(&[1.0, 2.0]));
    }
}

//! `CascadeMetrics` — the observability schema shared by the simulator
//! and the real-thread runtime.
//!
//! The paper's argument is quantitative: chunk sizes trade helper coverage
//! against the ~120/~500-cycle control-transfer cost (§2.2), and the
//! figures are all phase accounting. This module gives both execution
//! engines one report shape for that accounting, so a simulated schedule
//! (times in **cycles**, derived from the [`Timeline`](crate::Timeline)'s
//! `ChunkEvent`s) and a real run (times in **nanoseconds**, measured by
//! `cascade-rt`'s `PhaseRecorder`) can be read, rendered, and diffed with
//! the same code.
//!
//! Everything is plain data with a hand-rolled JSON encoder (the offline
//! build vendors no serde). Field order in the JSON is fixed, so a report
//! for a deterministic source (the simulator) is byte-stable and can be
//! checked in as a golden file.

/// Which engine produced a [`CascadeMetrics`] report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsSource {
    /// The cycle-accurate simulator (`cascade-core`): deterministic,
    /// times in simulated cycles.
    Simulated,
    /// The real-thread runtime (`cascade-rt`): wall-clock, times in
    /// nanoseconds.
    Real,
}

impl MetricsSource {
    /// Lower-case label used in text and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            MetricsSource::Simulated => "simulated",
            MetricsSource::Real => "real",
        }
    }

    /// The time unit every duration field of the report is expressed in.
    pub fn time_unit(&self) -> &'static str {
        match self {
            MetricsSource::Simulated => "cycles",
            MetricsSource::Real => "ns",
        }
    }
}

/// The phase a worker (or simulated processor) is in at any instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Helper work: prefetching or packing the upcoming chunk's operands.
    Helper,
    /// Spinning on the token (includes the claim CAS on real threads).
    Spin,
    /// Executing a chunk (the serialized phase).
    Execute,
    /// Climbing the recovery ladder after a fault (real threads only).
    Retry,
    /// Everything else: startup, roster bookkeeping, token release.
    Other,
}

impl PhaseKind {
    /// All kinds, in canonical report order.
    pub const ALL: [PhaseKind; 5] = [
        PhaseKind::Helper,
        PhaseKind::Spin,
        PhaseKind::Execute,
        PhaseKind::Retry,
        PhaseKind::Other,
    ];

    /// Lower-case label used in text and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::Helper => "helper",
            PhaseKind::Spin => "spin",
            PhaseKind::Execute => "execute",
            PhaseKind::Retry => "retry",
            PhaseKind::Other => "other",
        }
    }
}

/// Count / sum / min / max of a duration-valued sample stream (in the
/// report's time unit). The aggregation is exact: `record` does only
/// comparisons and one addition, so integer-valued inputs below 2^53
/// aggregate without rounding.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when `count == 0`).
    pub min: f64,
    /// Largest sample (0 when `count == 0`).
    pub max: f64,
}

impl LatencyStats {
    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Fold another distribution into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}}}",
            self.count,
            fmt_f64(self.sum),
            fmt_f64(self.min),
            fmt_f64(self.max),
            fmt_f64(self.mean())
        )
    }
}

/// One worker's (or simulated processor's) share of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerMetrics {
    /// Worker / processor index.
    pub worker: u64,
    /// Chunks this worker executed.
    pub chunks: u64,
    /// Time in helper phases.
    pub helper_time: f64,
    /// Time spinning on the token.
    pub spin_time: f64,
    /// Time in execution phases.
    pub exec_time: f64,
    /// Time climbing the recovery ladder (0 for simulated runs).
    pub retry_time: f64,
    /// Remaining time: startup, bookkeeping, token release.
    pub other_time: f64,
    /// Total wall time of the worker. For real runs the recorder
    /// guarantees `helper + spin + exec + retry + other == wall` exactly;
    /// for simulated runs `other_time` is defined as the idle remainder,
    /// so the identity holds by construction there too.
    pub wall_time: f64,
    /// Iterations covered by helper work.
    pub helper_iters: u64,
    /// Chunks whose helper covered every iteration before the token came.
    pub helper_complete: u64,
    /// Helper phases abandoned early (token arrival / jump-out).
    pub jump_outs: u64,
    /// Helper poll batches that stalled on the dependence horizon
    /// (PR 3's gated helpers; 0 when the kernel declares no horizon).
    pub horizon_stalls: u64,
    /// Bytes packed into the sequential buffer by restructure helpers.
    pub packed_bytes: u64,
    /// Bytes covered by prefetch helpers (iterations × per-iteration
    /// operand footprint).
    pub prefetched_bytes: u64,
    /// Token handoffs performed (successful releases of a finished chunk).
    pub handoffs: u64,
    /// Chunks whose undo journal was rolled back after a mid-body fault
    /// (0 for simulated and fault-free runs).
    pub rollbacks: u64,
    /// Bytes captured into undo journals before execution phases (0 when
    /// journaling is off or the kernel is unjournalable).
    pub journal_bytes: u64,
    /// Time spent capturing and rolling back undo journals. A side
    /// counter carved out of the execute/retry phases, *not* a sixth
    /// phase: the `helper + spin + execute + retry + other == wall`
    /// partition is unaffected.
    pub journal_time: f64,
    /// Durable checkpoints this worker captured and published (0 when
    /// checkpointing is off — the default — and for simulated runs).
    pub ckpt_count: u64,
    /// Delta bytes written into durable checkpoints by this worker.
    pub ckpt_bytes: u64,
    /// Time spent capturing and publishing durable checkpoints. Like
    /// `journal_time`, a side counter riding inside the phases, *not* a
    /// sixth phase: the partition identity is unaffected.
    pub ckpt_time: f64,
    /// Committed chunks this worker *verified* (digest compare and, under
    /// replaying policies, journaled re-execution) before letting its own
    /// execution proceed. 0 when `VerifyPolicy::Off` and for simulated
    /// runs.
    pub verified_chunks: u64,
    /// Time spent digesting write footprints at commit and verifying the
    /// predecessor's chunk after claim. Like `journal_time`, a side
    /// counter riding inside the phases, *not* a sixth phase.
    pub verify_time: f64,
    /// Phase intervals lost because the opt-in event ring hit its
    /// capacity; a non-zero value flags `events` as truncated.
    pub events_dropped: u64,
    /// Receive-side token-handoff latency: release of chunk `j` by the
    /// previous executor → this worker's claim of `j`.
    pub takeover: LatencyStats,
    /// Per-chunk execution-phase durations.
    pub chunk_exec: LatencyStats,
}

impl WorkerMetrics {
    /// Fraction of wall time spent doing helper work, in [0, 1].
    pub fn helper_occupancy(&self) -> f64 {
        if self.wall_time <= 0.0 {
            0.0
        } else {
            self.helper_time / self.wall_time
        }
    }

    /// Fraction of wall time spent spinning on the token, in [0, 1].
    pub fn spin_fraction(&self) -> f64 {
        if self.wall_time <= 0.0 {
            0.0
        } else {
            self.spin_time / self.wall_time
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"worker\": {}, \"chunks\": {}, \"phases\": {{\"helper\": {}, \"spin\": {}, \"execute\": {}, \"retry\": {}, \"other\": {}}}, \"wall\": {}, \"helper_iters\": {}, \"helper_complete\": {}, \"jump_outs\": {}, \"horizon_stalls\": {}, \"packed_bytes\": {}, \"prefetched_bytes\": {}, \"handoffs\": {}, \"rollbacks\": {}, \"journal_bytes\": {}, \"journal_time\": {}, \"ckpt_count\": {}, \"ckpt_bytes\": {}, \"ckpt_time\": {}, \"verified_chunks\": {}, \"verify_time\": {}, \"events_dropped\": {}, \"takeover\": {}, \"chunk_exec\": {}}}",
            self.worker,
            self.chunks,
            fmt_f64(self.helper_time),
            fmt_f64(self.spin_time),
            fmt_f64(self.exec_time),
            fmt_f64(self.retry_time),
            fmt_f64(self.other_time),
            fmt_f64(self.wall_time),
            self.helper_iters,
            self.helper_complete,
            self.jump_outs,
            self.horizon_stalls,
            self.packed_bytes,
            self.prefetched_bytes,
            self.handoffs,
            self.rollbacks,
            self.journal_bytes,
            fmt_f64(self.journal_time),
            self.ckpt_count,
            self.ckpt_bytes,
            fmt_f64(self.ckpt_time),
            self.verified_chunks,
            fmt_f64(self.verify_time),
            self.events_dropped,
            self.takeover.json(),
            self.chunk_exec.json(),
        )
    }
}

/// One timestamped phase interval from the opt-in event ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSample {
    /// Worker the interval belongs to.
    pub worker: u64,
    /// What the worker was doing.
    pub kind: PhaseKind,
    /// Chunk the phase was about, when attributable.
    pub chunk: Option<u64>,
    /// Interval start, relative to the run origin.
    pub start: f64,
    /// Interval end.
    pub end: f64,
}

impl PhaseSample {
    fn json(&self) -> String {
        let chunk = match self.chunk {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"worker\": {}, \"kind\": \"{}\", \"chunk\": {}, \"start\": {}, \"end\": {}}}",
            self.worker,
            self.kind.label(),
            chunk,
            fmt_f64(self.start),
            fmt_f64(self.end)
        )
    }
}

/// The per-run observability report: one schema for simulated and real
/// cascades.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CascadeMetrics {
    /// Engine that produced the report (defaults to simulated).
    pub source: Option<MetricsSource>,
    /// Total chunks executed.
    pub chunks: u64,
    /// Total loop iterations.
    pub iters: u64,
    /// Wall time of the whole run (makespan for simulated schedules).
    pub wall_time: f64,
    /// Per-worker breakdown, indexed by worker id.
    pub workers: Vec<WorkerMetrics>,
    /// Token-handoff latency distribution, aggregated over all workers.
    /// For a fault-free single cascade, `handoff.count == chunks - 1`
    /// (chunk 0's grant exists before the run starts — nothing hands it
    /// off).
    pub handoff: LatencyStats,
    /// Chunk execution-time distribution, aggregated over all workers.
    pub chunk_exec: LatencyStats,
    /// Cancel latency: the cancel request firing → the first worker
    /// acting on it. Zero for a run that was never cancelled (always zero
    /// for simulated runs, which have no governance layer). A side
    /// counter, not a phase.
    pub cancel_latency: f64,
    /// Peak bytes reserved from the run's memory budget (journal and
    /// pack arenas); zero when nothing was metered. A side counter, not
    /// a phase.
    pub budget_high_water: u64,
    /// Sub-loops a plan-driven run executed; zero for classic cascades
    /// and simulated runs. A side counter, not a phase.
    pub sub_loops: u64,
    /// Structural DOACROSS post/wait gate count: gated iterations whose
    /// dependence iteration lay in a different chunk. Deterministic
    /// (independent of timing); zero outside plan mode. A side counter.
    pub post_waits: u64,
    /// Time workers spent blocked in DOACROSS gate spins, in the run's
    /// time unit. Timing-dependent; zero outside plan mode. A side
    /// counter, not a phase (gate spins also land in each worker's Spin
    /// phase).
    pub post_wait_stall: f64,
    /// Arena scrub passes the supervisor ran (whole-memory checksums of
    /// bytes outside every chunk's write footprint, taken at quiescent
    /// points). Zero when `VerifyPolicy::Off` and for simulated runs. A
    /// side counter, not a phase.
    pub scrubs: u64,
    /// Timestamped phase intervals (empty unless the event ring was on).
    pub events: Vec<PhaseSample>,
}

impl CascadeMetrics {
    /// The time unit of every duration field.
    pub fn time_unit(&self) -> &'static str {
        self.source.unwrap_or(MetricsSource::Simulated).time_unit()
    }

    /// Recompute the run-level `handoff` and `chunk_exec` aggregates from
    /// the per-worker distributions. Exact: merging is pure counting,
    /// addition, and comparison.
    pub fn aggregate(&mut self) {
        let mut handoff = LatencyStats::default();
        let mut chunk_exec = LatencyStats::default();
        for w in &self.workers {
            handoff.merge(&w.takeover);
            chunk_exec.merge(&w.chunk_exec);
        }
        self.handoff = handoff;
        self.chunk_exec = chunk_exec;
    }

    /// Fraction of iterations covered by helper work, in [0, 1].
    pub fn helper_coverage(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        let helped: u64 = self.workers.iter().map(|w| w.helper_iters).sum();
        helped as f64 / self.iters as f64
    }

    /// Total bytes packed into sequential buffers.
    pub fn packed_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.packed_bytes).sum()
    }

    /// Total bytes covered by prefetch helpers.
    pub fn prefetched_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.prefetched_bytes).sum()
    }

    /// Total chunks rolled back via their undo journal.
    pub fn rollbacks(&self) -> u64 {
        self.workers.iter().map(|w| w.rollbacks).sum()
    }

    /// Total bytes captured into undo journals.
    pub fn journal_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.journal_bytes).sum()
    }

    /// Total time spent capturing and rolling back undo journals (a side
    /// counter inside the execute/retry phases, not a sixth phase).
    pub fn journal_time(&self) -> f64 {
        self.workers.iter().map(|w| w.journal_time).sum()
    }

    /// Total durable checkpoints captured and published.
    pub fn ckpt_count(&self) -> u64 {
        self.workers.iter().map(|w| w.ckpt_count).sum()
    }

    /// Total delta bytes written into durable checkpoints.
    pub fn ckpt_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.ckpt_bytes).sum()
    }

    /// Total time spent capturing and publishing durable checkpoints (a
    /// side counter, not a sixth phase).
    pub fn ckpt_time(&self) -> f64 {
        self.workers.iter().map(|w| w.ckpt_time).sum()
    }

    /// Total committed chunks verified before downstream execution.
    pub fn verified_chunks(&self) -> u64 {
        self.workers.iter().map(|w| w.verified_chunks).sum()
    }

    /// Total time spent digesting and verifying committed chunks (a side
    /// counter, not a sixth phase).
    pub fn verify_time(&self) -> f64 {
        self.workers.iter().map(|w| w.verify_time).sum()
    }

    /// Total phase intervals lost to event-ring capacity across workers;
    /// non-zero means `events` is a truncated timeline.
    pub fn events_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.events_dropped).sum()
    }

    /// Render the fixed-field-order JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"source\": \"{}\",\n",
            self.source.unwrap_or(MetricsSource::Simulated).label()
        ));
        out.push_str(&format!("  \"time_unit\": \"{}\",\n", self.time_unit()));
        out.push_str(&format!("  \"chunks\": {},\n", self.chunks));
        out.push_str(&format!("  \"iters\": {},\n", self.iters));
        out.push_str(&format!("  \"wall\": {},\n", fmt_f64(self.wall_time)));
        out.push_str(&format!(
            "  \"helper_coverage\": {},\n",
            fmt_f64(self.helper_coverage())
        ));
        out.push_str(&format!("  \"packed_bytes\": {},\n", self.packed_bytes()));
        out.push_str(&format!(
            "  \"prefetched_bytes\": {},\n",
            self.prefetched_bytes()
        ));
        out.push_str(&format!("  \"rollbacks\": {},\n", self.rollbacks()));
        out.push_str(&format!("  \"journal_bytes\": {},\n", self.journal_bytes()));
        out.push_str(&format!(
            "  \"journal_time\": {},\n",
            fmt_f64(self.journal_time())
        ));
        out.push_str(&format!("  \"ckpt_count\": {},\n", self.ckpt_count()));
        out.push_str(&format!("  \"ckpt_bytes\": {},\n", self.ckpt_bytes()));
        out.push_str(&format!(
            "  \"ckpt_time\": {},\n",
            fmt_f64(self.ckpt_time())
        ));
        out.push_str(&format!(
            "  \"verified_chunks\": {},\n",
            self.verified_chunks()
        ));
        out.push_str(&format!(
            "  \"verify_time\": {},\n",
            fmt_f64(self.verify_time())
        ));
        out.push_str(&format!("  \"scrubs\": {},\n", self.scrubs));
        out.push_str(&format!(
            "  \"events_dropped\": {},\n",
            self.events_dropped()
        ));
        out.push_str(&format!(
            "  \"cancel_latency\": {},\n",
            fmt_f64(self.cancel_latency)
        ));
        out.push_str(&format!(
            "  \"budget_high_water\": {},\n",
            self.budget_high_water
        ));
        out.push_str(&format!("  \"sub_loops\": {},\n", self.sub_loops));
        out.push_str(&format!("  \"post_waits\": {},\n", self.post_waits));
        out.push_str(&format!(
            "  \"post_wait_stall\": {},\n",
            fmt_f64(self.post_wait_stall)
        ));
        out.push_str(&format!("  \"handoff\": {},\n", self.handoff.json()));
        out.push_str(&format!("  \"chunk_exec\": {},\n", self.chunk_exec.json()));
        out.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            let sep = if i + 1 < self.workers.len() { "," } else { "" };
            out.push_str(&format!("    {}{}\n", w.json(), sep));
        }
        out.push_str("  ],\n");
        out.push_str("  \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i + 1 < self.events.len() { "," } else { "" };
            out.push_str(&format!("    {}{}\n", e.json(), sep));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Render the human-readable phase table.
    pub fn render_text(&self) -> String {
        let unit = self.time_unit();
        let mut out = String::new();
        out.push_str(&format!(
            "cascade metrics ({} run, times in {unit})\n",
            self.source.unwrap_or(MetricsSource::Simulated).label()
        ));
        out.push_str(&format!(
            "  {} chunks, {} iters, wall {} {unit}, helper coverage {:.0}%\n",
            self.chunks,
            self.iters,
            fmt_time(self.wall_time),
            100.0 * self.helper_coverage()
        ));
        out.push_str(&format!(
            "  packed {} B, prefetched {} B, journaled {} B ({} rollbacks)\n",
            self.packed_bytes(),
            self.prefetched_bytes(),
            self.journal_bytes(),
            self.rollbacks()
        ));
        if self.ckpt_count() > 0 {
            out.push_str(&format!(
                "  durability: {} checkpoints, {} delta B, {} {unit} capture+publish\n",
                self.ckpt_count(),
                self.ckpt_bytes(),
                fmt_time(self.ckpt_time())
            ));
        }
        if self.cancel_latency > 0.0 || self.budget_high_water > 0 {
            out.push_str(&format!(
                "  governance: cancel latency {} {unit}, budget high-water {} B\n",
                fmt_time(self.cancel_latency),
                self.budget_high_water
            ));
        }
        if self.sub_loops > 0 {
            out.push_str(&format!(
                "  planned: {} sub-loops, {} post/waits, {} {unit} gate stall\n",
                self.sub_loops,
                self.post_waits,
                fmt_time(self.post_wait_stall)
            ));
        }
        if self.verified_chunks() > 0 || self.scrubs > 0 {
            out.push_str(&format!(
                "  verification: {} chunks verified, {} arena scrubs, {} {unit} digest+verify\n",
                self.verified_chunks(),
                self.scrubs,
                fmt_time(self.verify_time())
            ));
        }
        out.push_str(&format!(
            "  token handoffs: {} ({} min / {} mean / {} max {unit})\n",
            self.handoff.count,
            fmt_time(self.handoff.min),
            fmt_time(self.handoff.mean()),
            fmt_time(self.handoff.max)
        ));
        out.push_str(&format!(
            "  chunk execute:  {} ({} min / {} mean / {} max {unit})\n\n",
            self.chunk_exec.count,
            fmt_time(self.chunk_exec.min),
            fmt_time(self.chunk_exec.mean()),
            fmt_time(self.chunk_exec.max)
        ));
        out.push_str(&format!(
            "  {:>6}  {:>6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>6}  {:>6}  {:>9}  {:>7}\n",
            "worker",
            "chunks",
            "helper",
            "spin",
            "execute",
            "wall",
            "occ%",
            "spin%",
            "hlp iters",
            "jumpout"
        ));
        for w in &self.workers {
            out.push_str(&format!(
                "  {:>6}  {:>6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>6.0}  {:>6.0}  {:>9}  {:>7}\n",
                w.worker,
                w.chunks,
                fmt_time(w.helper_time),
                fmt_time(w.spin_time),
                fmt_time(w.exec_time),
                fmt_time(w.wall_time),
                100.0 * w.helper_occupancy(),
                100.0 * w.spin_fraction(),
                w.helper_iters,
                w.jump_outs,
            ));
        }
        if !self.events.is_empty() || self.events_dropped() > 0 {
            out.push_str(&format!(
                "\n  event ring: {} phase intervals recorded, {} dropped at capacity\n",
                self.events.len(),
                self.events_dropped()
            ));
        }
        out
    }

    /// Check the cross-engine invariants every report must satisfy;
    /// panics with a description on violation. `strict_partition`
    /// additionally demands the phase-partition identity to within one
    /// part in 10^9 (real recorders guarantee it exactly; simulated
    /// reports construct `other_time` as the remainder).
    pub fn check(&self) {
        let chunks: u64 = self.workers.iter().map(|w| w.chunks).sum();
        assert_eq!(chunks, self.chunks, "per-worker chunks must sum to total");
        let mut agg = self.clone();
        agg.aggregate();
        assert_eq!(
            agg.handoff, self.handoff,
            "handoff must aggregate the per-worker takeover stats"
        );
        assert_eq!(
            agg.chunk_exec, self.chunk_exec,
            "chunk_exec must aggregate the per-worker distributions"
        );
        for w in &self.workers {
            let parts = w.helper_time + w.spin_time + w.exec_time + w.retry_time + w.other_time;
            let tol = 1e-9 * w.wall_time.abs().max(1.0);
            assert!(
                (parts - w.wall_time).abs() <= tol,
                "worker {}: phases ({parts}) must partition wall time ({})",
                w.worker,
                w.wall_time
            );
            assert!(
                w.chunk_exec.count == w.chunks,
                "worker {}: one exec sample per chunk",
                w.worker
            );
            assert!(
                w.verify_time >= 0.0 && w.verify_time.is_finite(),
                "worker {}: verify_time must be a finite non-negative side counter",
                w.worker
            );
            assert!(
                w.verified_chunks <= self.chunks,
                "worker {}: cannot verify more chunks than the run executed",
                w.worker
            );
        }
        for e in &self.events {
            assert!(e.end >= e.start, "event intervals must be well-formed");
            assert!(
                (e.worker as usize) < self.workers.len(),
                "event worker out of range"
            );
        }
    }
}

/// Shortest-round-trip float formatting (Rust's `{}`), which is
/// deterministic for a given value — the property the golden-JSON diff
/// relies on. Integer-valued floats print without a fraction.
pub fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Compact human-readable duration (text renderer only).
fn fmt_time(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else {
        fmt_f64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_record_and_merge_are_exact() {
        let mut a = LatencyStats::default();
        a.record(5.0);
        a.record(3.0);
        let mut b = LatencyStats::default();
        b.record(10.0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 18.0);
        assert_eq!(a.min, 3.0);
        assert_eq!(a.max, 10.0);
        assert_eq!(a.mean(), 6.0);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = LatencyStats::default();
        a.record(2.0);
        let before = a;
        a.merge(&LatencyStats::default());
        assert_eq!(a, before);
        let mut e = LatencyStats::default();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn json_has_fixed_field_order_and_unit() {
        let mut m = CascadeMetrics {
            source: Some(MetricsSource::Simulated),
            chunks: 2,
            iters: 100,
            wall_time: 1000.0,
            workers: vec![WorkerMetrics {
                worker: 0,
                chunks: 2,
                exec_time: 600.0,
                spin_time: 100.0,
                helper_time: 200.0,
                other_time: 100.0,
                wall_time: 1000.0,
                ..Default::default()
            }],
            ..Default::default()
        };
        m.workers[0].chunk_exec.record(300.0);
        m.workers[0].chunk_exec.record(300.0);
        m.aggregate();
        let j = m.to_json();
        let src = j.find("\"source\"").unwrap();
        let unit = j.find("\"time_unit\": \"cycles\"").unwrap();
        let workers = j.find("\"workers\"").unwrap();
        assert!(src < unit && unit < workers);
        m.check();
    }

    #[test]
    #[should_panic(expected = "partition wall time")]
    fn check_rejects_phase_gap() {
        let m = CascadeMetrics {
            chunks: 0,
            workers: vec![WorkerMetrics {
                wall_time: 10.0,
                exec_time: 4.0, // 6.0 unaccounted
                ..Default::default()
            }],
            ..Default::default()
        };
        m.check();
    }

    #[test]
    fn fmt_f64_integral_and_fractional() {
        assert_eq!(fmt_f64(120.0), "120");
        assert_eq!(fmt_f64(1.5), "1.5");
    }
}

//! Schedule timelines: the data behind the paper's Figure 1.
//!
//! The bounded-processor scheduler records one [`ChunkEvent`] per chunk —
//! who ran it, when its helper worked, when it executed. From these a
//! per-processor timeline (helper / execute / idle segments) can be
//! rendered, which is exactly what Figure 1(b) of the paper draws by
//! hand.

use crate::metrics::{CascadeMetrics, MetricsSource, PhaseKind, PhaseSample, WorkerMetrics};

/// One chunk's life in the schedule (all times in simulated cycles from
/// the start of the run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkEvent {
    /// Chunk index within its loop.
    pub chunk: u64,
    /// Processor that owned the chunk.
    pub proc: usize,
    /// When the processor became free to start this chunk's helper.
    pub helper_start: f64,
    /// Cycles the helper actually ran (0 under `HelperPolicy::None`).
    pub helper_cycles: f64,
    /// When the token arrived (end of previous chunk + transfer).
    pub token_arrival: f64,
    /// When execution began (max of token arrival and helper completion).
    pub exec_start: f64,
    /// When execution finished.
    pub exec_end: f64,
    /// Iterations the helper covered.
    pub helper_iters: u64,
    /// Iterations in the chunk.
    pub iters: u64,
}

impl ChunkEvent {
    /// Idle cycles between helper completion and execution start.
    pub fn spin_cycles(&self) -> f64 {
        (self.exec_start - (self.helper_start + self.helper_cycles)).max(0.0)
    }

    /// Execution-phase duration.
    pub fn exec_cycles(&self) -> f64 {
        self.exec_end - self.exec_start
    }
}

/// A whole loop's schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Events in token (chunk) order.
    pub events: Vec<ChunkEvent>,
    /// Number of processors in the schedule.
    pub nprocs: usize,
}

impl Timeline {
    /// Start time of the earliest event (0 for an empty timeline).
    pub fn start(&self) -> f64 {
        self.events
            .first()
            .map_or(0.0, |e| e.helper_start.min(e.token_arrival))
    }

    /// End time of the schedule.
    pub fn end(&self) -> f64 {
        self.events.iter().map(|e| e.exec_end).fold(0.0, f64::max)
    }

    /// Validate the invariants every legal cascade schedule obeys;
    /// panics with a description on violation. Used by tests and by the
    /// renderer before drawing.
    pub fn validate(&self) {
        let mut prev_end = f64::NEG_INFINITY;
        let mut proc_busy_until = vec![f64::NEG_INFINITY; self.nprocs];
        for (i, e) in self.events.iter().enumerate() {
            assert_eq!(e.chunk as usize, i, "events must be in chunk order");
            assert!(e.proc < self.nprocs, "processor out of range");
            assert!(
                e.exec_start >= e.token_arrival - 1e-9,
                "executed before the token arrived"
            );
            assert!(e.exec_end >= e.exec_start, "negative execution");
            assert!(
                e.exec_start >= prev_end - 1e-9,
                "chunk {i} overlapped the previous execution phase"
            );
            assert!(
                e.helper_start >= proc_busy_until[e.proc] - 1e-9,
                "chunk {i}'s helper overlapped its processor's previous work"
            );
            if i > 0 {
                assert!(
                    e.token_arrival >= prev_end - 1e-9,
                    "chunk {i}'s token arrived before chunk {} finished \
                     (negative handoff latency)",
                    i - 1
                );
            }
            prev_end = e.exec_end;
            proc_busy_until[e.proc] = e.exec_end;
        }
        // The derived observability report must satisfy the cross-engine
        // schema invariants (phase partition, aggregation exactness,
        // handoff count) for every legal schedule.
        self.metrics_with_events(true).check();
    }

    /// Derive the [`CascadeMetrics`] observability report (times in
    /// simulated cycles) from the schedule — the same schema the
    /// real-thread runtime's `PhaseRecorder` produces, so simulated and
    /// real runs diff with the same tools.
    pub fn metrics(&self) -> CascadeMetrics {
        self.metrics_with_events(false)
    }

    /// Like [`Timeline::metrics`], optionally including one
    /// [`PhaseSample`] per helper / spin / execute interval (the
    /// simulator's analogue of the runtime's opt-in event ring).
    pub fn metrics_with_events(&self, events: bool) -> CascadeMetrics {
        let t0 = self
            .events
            .iter()
            .map(|e| e.helper_start.min(e.token_arrival))
            .fold(f64::INFINITY, f64::min)
            .min(self.start());
        let span = (self.end() - t0).max(0.0);
        let mut workers: Vec<WorkerMetrics> = (0..self.nprocs)
            .map(|p| WorkerMetrics {
                worker: p as u64,
                wall_time: span,
                ..Default::default()
            })
            .collect();
        let mut samples = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            let w = &mut workers[e.proc];
            w.chunks += 1;
            w.helper_time += e.helper_cycles;
            w.spin_time += e.spin_cycles();
            w.exec_time += e.exec_cycles();
            w.helper_iters += e.helper_iters;
            if e.helper_iters > 0 && e.helper_iters >= e.iters {
                w.helper_complete += 1;
            }
            if e.helper_cycles > 0.0 && e.helper_iters < e.iters {
                w.jump_outs += 1;
            }
            w.chunk_exec.record(e.exec_cycles());
            if i + 1 < self.events.len() {
                // Releasing chunk i hands the token to chunk i + 1.
                w.handoffs += 1;
                let next = &self.events[i + 1];
                workers[next.proc]
                    .takeover
                    .record((next.token_arrival - e.exec_end).max(0.0));
            }
            if events {
                let rel = |t: f64| t - t0;
                let helper_end = e.helper_start + e.helper_cycles;
                if e.helper_cycles > 0.0 {
                    samples.push(PhaseSample {
                        worker: e.proc as u64,
                        kind: PhaseKind::Helper,
                        chunk: Some(e.chunk),
                        start: rel(e.helper_start),
                        end: rel(helper_end),
                    });
                }
                if e.spin_cycles() > 0.0 {
                    samples.push(PhaseSample {
                        worker: e.proc as u64,
                        kind: PhaseKind::Spin,
                        chunk: Some(e.chunk),
                        start: rel(helper_end.max(e.helper_start)),
                        end: rel(e.exec_start),
                    });
                }
                samples.push(PhaseSample {
                    worker: e.proc as u64,
                    kind: PhaseKind::Execute,
                    chunk: Some(e.chunk),
                    start: rel(e.exec_start),
                    end: rel(e.exec_end),
                });
            }
        }
        for w in &mut workers {
            // A simulated processor is idle whenever no chunk of its own
            // is in flight: expose that remainder as `other`, so the
            // phase-partition identity holds for both engines.
            w.other_time = (w.wall_time - w.helper_time - w.spin_time - w.exec_time).max(0.0);
        }
        let mut m = CascadeMetrics {
            source: Some(MetricsSource::Simulated),
            chunks: self.events.len() as u64,
            iters: self.events.iter().map(|e| e.iters).sum(),
            wall_time: span,
            workers,
            events: samples,
            ..Default::default()
        };
        m.aggregate();
        m
    }

    /// Render an ASCII Gantt chart: one row per processor, `width`
    /// characters across the full makespan. Glyphs: `h` helper, `.` spin
    /// (waiting for the token), `E` execute, space idle.
    pub fn render(&self, width: usize) -> String {
        assert!(width >= 10, "chart too narrow");
        self.validate();
        let t0 = self.start();
        let t1 = self.end();
        let span = (t1 - t0).max(1e-9);
        let col = |t: f64| -> usize {
            (((t - t0) / span) * (width - 1) as f64)
                .round()
                .clamp(0.0, (width - 1) as f64) as usize
        };
        let mut rows = vec![vec![' '; width]; self.nprocs];
        for e in &self.events {
            let row = &mut rows[e.proc];
            let fill = |row: &mut Vec<char>, a: f64, b: f64, ch: char| {
                if b > a {
                    for cell in row.iter_mut().take(col(b).min(width - 1) + 1).skip(col(a)) {
                        *cell = ch;
                    }
                }
            };
            fill(row, e.helper_start, e.helper_start + e.helper_cycles, 'h');
            fill(row, e.helper_start + e.helper_cycles, e.exec_start, '.');
            fill(row, e.exec_start, e.exec_end, 'E');
        }
        let mut out = String::new();
        for (p, row) in rows.iter().enumerate() {
            let line: String = row.iter().collect();
            out.push_str(&format!("proc {p} |{}|\n", line));
        }
        out.push_str(&format!(
            "        0{:>width$}\n",
            format!("{:.0} cycles", span),
            width = width - 1
        ));
        out.push_str("        h = helper phase   . = waiting for token   E = execution phase\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(chunk: u64, proc: usize, hs: f64, hc: f64, ta: f64, es: f64, ee: f64) -> ChunkEvent {
        ChunkEvent {
            chunk,
            proc,
            helper_start: hs,
            helper_cycles: hc,
            token_arrival: ta,
            exec_start: es,
            exec_end: ee,
            helper_iters: 1,
            iters: 1,
        }
    }

    fn cascade3() -> Timeline {
        Timeline {
            nprocs: 3,
            events: vec![
                ev(0, 0, 0.0, 0.0, 0.0, 0.0, 100.0),
                ev(1, 1, 0.0, 80.0, 110.0, 110.0, 190.0),
                ev(2, 2, 0.0, 80.0, 200.0, 200.0, 280.0),
                ev(3, 0, 100.0, 80.0, 290.0, 290.0, 370.0),
            ],
        }
    }

    #[test]
    fn valid_schedule_passes() {
        cascade3().validate();
        assert_eq!(cascade3().end(), 370.0);
    }

    #[test]
    #[should_panic(expected = "overlapped the previous execution")]
    fn overlapping_execution_is_rejected() {
        let mut t = cascade3();
        t.events[1].token_arrival = 40.0;
        t.events[1].exec_start = 50.0; // inside chunk 0's execution
        t.validate();
    }

    #[test]
    #[should_panic(expected = "before the token arrived")]
    fn premature_execution_is_rejected() {
        let mut t = cascade3();
        t.events[2].exec_start = 150.0;
        t.validate();
    }

    #[test]
    fn render_shows_all_three_phases() {
        let s = cascade3().render(60);
        assert!(s.contains('E'));
        assert!(s.contains('h'));
        assert!(
            s.contains('.'),
            "proc 1 spins between helper end and token: {s}"
        );
        assert_eq!(s.lines().count(), 5, "3 procs + axis + legend");
    }

    #[test]
    fn exactly_one_processor_executes_at_a_time() {
        // Structural Figure-1 property: E segments never overlap.
        let t = cascade3();
        for w in t.events.windows(2) {
            assert!(w[1].exec_start >= w[0].exec_end);
        }
    }

    #[test]
    fn spin_cycles_accounting() {
        let e = ev(1, 1, 0.0, 80.0, 110.0, 110.0, 190.0);
        assert_eq!(e.spin_cycles(), 30.0);
        assert_eq!(e.exec_cycles(), 80.0);
    }
}

//! # cascade-core — cascaded execution
//!
//! The primary contribution of *Cascaded Execution: Speeding Up
//! Unparallelized Execution on Shared-Memory Multiprocessors* (Anderson,
//! Nguyen, Zahorjan — IPPS 1999), reproduced as a library.
//!
//! An unparallelizable loop must run sequentially; cascaded execution makes
//! the otherwise-idle processors of a shared-memory machine useful by
//! rotating *execution phases* (contiguous chunks of the iteration space)
//! across them, while every other processor runs a *helper phase* that
//! optimizes its memory state for its next turn:
//!
//! * [`HelperPolicy::Prefetch`] — shadow-execute the next chunk, loading
//!   operands into the local caches;
//! * [`HelperPolicy::Restructure`] — stream read-only operands, in dynamic
//!   reference order, into a dense per-processor *sequential buffer*
//!   (eliminating conflict misses, filling every line with useful data,
//!   removing indexing work, and optionally hoisting read-only computation
//!   into the helper).
//!
//! Three simulators share the same walkers (so reference streams are
//! identical by construction):
//!
//! * [`run_sequential`] — the single-processor baseline;
//! * [`run_cascaded`] — the bounded-`P` schedule with per-chunk control
//!   transfers, helper windows, and the paper's jump-out-of-helper
//!   modification;
//! * [`run_unbounded`] — the §3.4 methodology (helpers always complete)
//!   used for the future-machine projections.
//!
//! ## Example
//!
//! ```
//! use cascade_core::{run_cascaded, run_sequential, CascadeConfig, HelperPolicy};
//! use cascade_mem::machines::pentium_pro;
//! use cascade_trace::{AddressSpace, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload};
//!
//! // A memory-bound streaming loop: y(i) = f(a(i)), 2MB footprint.
//! let mut space = AddressSpace::new();
//! let a = space.alloc("a", 8, 1 << 17);
//! let y = space.alloc("y", 8, 1 << 17);
//! let spec = LoopSpec {
//!     name: "stream".into(),
//!     iters: 1 << 17,
//!     refs: vec![
//!         StreamRef { name: "a(i)", array: a, pattern: Pattern::Affine { base: 0, stride: 1 },
//!                     mode: Mode::Read, bytes: 8, hoistable: false },
//!         StreamRef { name: "y(i)", array: y, pattern: Pattern::Affine { base: 0, stride: 1 },
//!                     mode: Mode::Write, bytes: 8, hoistable: false },
//!     ],
//!     compute: 2.0, hoistable_compute: 0.0, hoist_result_bytes: 0,
//! };
//! let w = Workload { space, index: IndexStore::new(), loops: vec![spec] };
//!
//! let machine = pentium_pro();
//! let baseline = run_sequential(&machine, &w, 1, true);
//! let cascaded = run_cascaded(&machine, &w, &CascadeConfig {
//!     policy: HelperPolicy::Restructure { hoist: false },
//!     ..CascadeConfig::default()
//! });
//! let speedup = cascaded.overall_speedup_vs(&baseline);
//! assert!(speedup > 1.0);
//! ```

#![warn(missing_docs)]

pub mod amdahl;
pub mod cascade;
pub mod chunk;
pub mod hash;
pub mod metrics;
pub mod policy;
pub mod report;
pub mod seq;
pub mod timeline;
pub mod unbounded;
pub mod walk;

pub use amdahl::AmdahlModel;
pub use cascade::run_cascaded;
pub use chunk::ChunkPlan;
pub use hash::fnv64;
pub use metrics::{
    CascadeMetrics, LatencyStats, MetricsSource, PhaseKind, PhaseSample, WorkerMetrics,
};
pub use policy::HelperPolicy;
pub use report::{CascadeConfig, LoopReport, PhaseTotals, RunReport, UNBOUNDED_PROCS};
pub use seq::run_sequential;
pub use timeline::{ChunkEvent, Timeline};
pub use unbounded::{run_unbounded, UnboundedConfig};
pub use walk::{
    exec_original, exec_restructured, helper_pack, helper_prefetch, HelperOutcome,
    INDIRECT_INDEXING_CYCLES, LOOP_CONTROL_CYCLES, PACK_CYCLES_PER_REF,
};

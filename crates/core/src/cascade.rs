//! The bounded-processor cascade scheduler — the system of Figure 1(b).
//!
//! Chunks of the iteration space rotate round-robin over `P` processors.
//! Exactly one processor is in its execution phase at a time; control
//! passes with a fixed per-chunk transfer cost. Between its turns, each
//! processor runs its helper (prefetch or restructure) for its *next*
//! chunk, in the window between finishing its previous chunk and the
//! token's arrival. With `jump_out` (the paper's §3.3 modification) an
//! unfinished helper is abandoned the moment the token arrives; without it
//! the token stalls until the helper completes.
//!
//! The schedule is simulated chunk-by-chunk in token order: when chunk `j`
//! is processed, the token-arrival time (end of chunk `j-1` plus transfer)
//! and the owning processor's free time (end of chunk `j-P`) are both
//! known, so the helper window — and therefore the helper's cycle budget —
//! is exact. Helper cache effects are simulated *after* the preceding
//! chunks' execution effects; this slightly favours the helper (it can see
//! writes that temporally overlapped it), which we accept and document in
//! DESIGN.md §6.3.

use cascade_mem::{MachineConfig, System};
use cascade_trace::{Resolver, Workload};

use crate::chunk::ChunkPlan;
use crate::policy::HelperPolicy;
use crate::report::{CascadeConfig, LoopReport, PhaseTotals, RunReport};
use crate::timeline::{ChunkEvent, Timeline};
use crate::walk::{exec_original, exec_restructured, helper_pack, helper_prefetch, HelperOutcome};

/// Simulate cascaded execution of the workload's loop sequence under `cfg`
/// and report the final call.
pub fn run_cascaded(
    machine: &MachineConfig,
    workload: &Workload,
    cfg: &CascadeConfig,
) -> RunReport {
    assert!(cfg.nprocs >= 1, "cascade needs at least one processor");
    assert!(cfg.calls >= 1, "at least one call required");
    workload.validate();

    // Per-processor sequential buffers live in a (cloned) extension of the
    // workload's address space, so buffer traffic exercises the same cache
    // model as everything else.
    let mut space = workload.space.clone();
    let hoist = cfg.policy.hoists();
    let buffer_bases: Vec<u64> = if cfg.policy.packs() {
        let mut buf_len = 1u64;
        for spec in &workload.loops {
            let plan = ChunkPlan::new(spec, cfg.chunk_bytes, machine.l1.line as u64);
            buf_len = buf_len.max(plan.iters_per_chunk() * spec.packed_bytes_per_iter(hoist));
        }
        (0..cfg.nprocs)
            .map(|p| {
                let id = space.alloc_aligned(&format!("packbuf{p}"), 1, buf_len, 64);
                space.array(id).base
            })
            .collect()
    } else {
        vec![0; cfg.nprocs]
    };

    let res = Resolver::new(&space, &workload.index);
    let mut sys = System::new(machine.clone(), cfg.nprocs);
    let transfer = machine.transfer_cost as f64;
    let mut now = 0.0f64;
    let mut loops = Vec::new();

    for call in 0..cfg.calls {
        if call > 0 && cfg.flush_between_calls {
            sys.flush_all();
        }
        let measured = call == cfg.calls - 1;
        if measured {
            loops.clear();
        }
        for spec in &workload.loops {
            sys.begin_region();
            let plan = ChunkPlan::new(spec, cfg.chunk_bytes, machine.l1.line as u64);
            let loop_start = now;
            let mut proc_free = vec![now; cfg.nprocs];
            let mut prev_end = now;
            let mut exec_tot = PhaseTotals::default();
            let mut helper_tot = PhaseTotals::default();
            let mut helper_complete = 0u64;
            let mut helper_iters = 0u64;
            let mut events: Vec<ChunkEvent> = Vec::new();

            for j in 0..plan.num_chunks() {
                let p = (j as usize) % cfg.nprocs;
                let range = plan.range(j);
                let range_len = range.end - range.start;
                let token_arrival = if j == 0 {
                    loop_start
                } else {
                    prev_end + transfer
                };
                let window = (token_arrival - proc_free[p]).max(0.0);
                let budget = cfg.jump_out.then_some(window);

                // --- helper phase ---
                let s0 = sys.snapshot();
                let helper = match cfg.policy {
                    HelperPolicy::None => HelperOutcome {
                        cycles: 0.0,
                        iters_done: 0,
                    },
                    HelperPolicy::Prefetch => {
                        if cfg.jump_out && window <= 0.0 {
                            HelperOutcome {
                                cycles: 0.0,
                                iters_done: 0,
                            }
                        } else {
                            helper_prefetch(&mut sys, p, res, spec, range.clone(), budget)
                        }
                    }
                    HelperPolicy::Restructure { hoist } => {
                        if cfg.jump_out && window <= 0.0 {
                            HelperOutcome {
                                cycles: 0.0,
                                iters_done: 0,
                            }
                        } else {
                            helper_pack(
                                &mut sys,
                                p,
                                res,
                                spec,
                                range.clone(),
                                buffer_bases[p],
                                hoist,
                                budget,
                            )
                        }
                    }
                };
                let s1 = sys.snapshot();

                // --- execution phase ---
                let start = token_arrival.max(proc_free[p] + helper.cycles);
                let exec_cycles = match cfg.policy {
                    HelperPolicy::None | HelperPolicy::Prefetch => {
                        exec_original(&mut sys, p, res, spec, range.clone())
                    }
                    HelperPolicy::Restructure { hoist } => exec_restructured(
                        &mut sys,
                        p,
                        res,
                        spec,
                        range.clone(),
                        buffer_bases[p],
                        hoist,
                        helper.iters_done,
                    ),
                };
                let end = start + exec_cycles;
                let helper_start = proc_free[p];
                proc_free[p] = end;
                prev_end = end;

                if measured {
                    let s2 = sys.snapshot();
                    helper_tot.add_delta(&s1.since(&s0));
                    exec_tot.add_delta(&s2.since(&s1));
                    helper_iters += helper.iters_done.min(range_len);
                    if helper.completed(range_len) && !matches!(cfg.policy, HelperPolicy::None) {
                        helper_complete += 1;
                    }
                    events.push(ChunkEvent {
                        chunk: j,
                        proc: p,
                        helper_start,
                        helper_cycles: helper.cycles,
                        token_arrival,
                        exec_start: start,
                        exec_end: end,
                        helper_iters: helper.iters_done.min(range_len),
                        iters: range_len,
                    });
                }
            }

            // Final transfer hands control back (one transfer per chunk in
            // total, as in the paper's accounting).
            let loop_end = prev_end + transfer;
            now = loop_end;
            if measured {
                loops.push(LoopReport {
                    name: spec.name.clone(),
                    cycles: loop_end - loop_start,
                    exec: exec_tot,
                    helper: helper_tot,
                    chunks: plan.num_chunks(),
                    helper_complete,
                    helper_iters,
                    iters: spec.iters,
                    timeline: Timeline {
                        events,
                        nprocs: cfg.nprocs,
                    },
                });
            }
        }
    }

    RunReport {
        machine: machine.name.to_string(),
        policy: cfg.policy.label().to_string(),
        nprocs: cfg.nprocs as u64,
        chunk_bytes: cfg.chunk_bytes,
        loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::run_sequential;
    use cascade_mem::machines::pentium_pro;
    use cascade_trace::{AddressSpace, IndexStore, LoopSpec, Mode, Pattern, StreamRef};

    /// A memory-bound gather workload whose footprint (3 x 2MB) greatly
    /// exceeds the Pentium Pro's 512KB L2, so the baseline misses heavily.
    fn memory_bound() -> Workload {
        let n: u64 = 1 << 18; // 256K iterations
        let mut space = AddressSpace::new();
        let x = space.alloc("x", 8, n);
        let a = space.alloc("a", 8, n);
        let ij = space.alloc("ij", 4, n);
        let mut index = IndexStore::new();
        // A strided permutation: data-dependent but touching every element.
        let stride = 4097u64; // odd, coprime with n
        index.set(ij, (0..n).map(|i| ((i * stride) % n) as u32).collect());
        let spec = LoopSpec {
            name: "gather-update".into(),
            iters: n,
            refs: vec![
                StreamRef {
                    name: "a(ij(i))",
                    array: a,
                    pattern: Pattern::Indirect {
                        index: ij,
                        ibase: 0,
                        istride: 1,
                    },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: true,
                },
                StreamRef {
                    name: "x(i)",
                    array: x,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Modify,
                    bytes: 8,
                    hoistable: false,
                },
            ],
            compute: 2.0,
            hoistable_compute: 1.0,
            hoist_result_bytes: 8,
        };
        Workload {
            space,
            index,
            loops: vec![spec],
        }
    }

    fn cfg(policy: HelperPolicy, nprocs: usize) -> CascadeConfig {
        CascadeConfig {
            nprocs,
            chunk_bytes: 64 * 1024,
            policy,
            jump_out: true,
            calls: 1,
            flush_between_calls: true,
        }
    }

    #[test]
    fn restructured_cascade_beats_sequential_on_memory_bound_loop() {
        let w = memory_bound();
        let m = pentium_pro();
        let base = run_sequential(&m, &w, 1, true);
        let casc = run_cascaded(&m, &w, &cfg(HelperPolicy::Restructure { hoist: true }, 4));
        let s = casc.overall_speedup_vs(&base);
        assert!(s > 1.1, "expected speedup > 1.1, got {s:.3}");
    }

    #[test]
    fn helperless_cascade_only_adds_overhead() {
        let w = memory_bound();
        let m = pentium_pro();
        let base = run_sequential(&m, &w, 1, true);
        let casc = run_cascaded(&m, &w, &cfg(HelperPolicy::None, 4));
        let s = casc.overall_speedup_vs(&base);
        assert!(
            s <= 1.0,
            "no-helper cascade cannot speed anything up, got {s:.3}"
        );
    }

    #[test]
    fn more_processors_do_not_hurt_restructured() {
        let w = memory_bound();
        let m = pentium_pro();
        let two = run_cascaded(&m, &w, &cfg(HelperPolicy::Restructure { hoist: true }, 2));
        let four = run_cascaded(&m, &w, &cfg(HelperPolicy::Restructure { hoist: true }, 4));
        assert!(
            four.total_cycles() <= two.total_cycles() * 1.02,
            "4 procs ({:.3e}) should not be slower than 2 ({:.3e})",
            four.total_cycles(),
            two.total_cycles()
        );
    }

    #[test]
    fn helper_coverage_grows_with_processors() {
        let w = memory_bound();
        let m = pentium_pro();
        let two = run_cascaded(&m, &w, &cfg(HelperPolicy::Prefetch, 2));
        let six = run_cascaded(&m, &w, &cfg(HelperPolicy::Prefetch, 6));
        assert!(
            six.loops[0].helper_coverage() >= two.loops[0].helper_coverage(),
            "more processors mean longer helper windows"
        );
    }

    #[test]
    fn execution_phase_misses_drop_under_prefetch() {
        let w = memory_bound();
        let m = pentium_pro();
        let base = run_sequential(&m, &w, 1, true);
        let casc = run_cascaded(&m, &w, &cfg(HelperPolicy::Prefetch, 4));
        assert!(
            casc.loops[0].exec.l2_misses < base.loops[0].exec.l2_misses,
            "prefetch helpers must move L2 misses off the execution phase: {} vs {}",
            casc.loops[0].exec.l2_misses,
            base.loops[0].exec.l2_misses
        );
        assert!(
            casc.loops[0].helper.l2_misses > 0,
            "the misses moved to the helpers"
        );
    }

    #[test]
    fn transfer_count_equals_chunks() {
        let w = memory_bound();
        let m = pentium_pro();
        let casc = run_cascaded(&m, &w, &cfg(HelperPolicy::Prefetch, 4));
        // Line footprint/iter: gather a(ij(i)) = 32B line + 4B index,
        // x(i) modify = 8B -> 44 bytes -> 1489 iters per 64KB chunk.
        let spec = &w.loops[0];
        let expected = ChunkPlan::new(spec, 64 * 1024, 32).num_chunks();
        assert_eq!(casc.loops[0].chunks, expected);
        assert_eq!(expected, (1u64 << 18).div_ceil((64 * 1024) / 44));
    }

    #[test]
    fn jump_out_trades_coverage_for_earlier_starts() {
        // The documented model behaviour (EXPERIMENTS.md, ablation B):
        // stalling always reaches full helper coverage; jump-out starts
        // execution sooner at the cost of partially-helped chunks. With
        // enough processors the two converge because windows are long
        // enough for helpers to finish anyway.
        let w = memory_bound();
        let m = pentium_pro();
        let mut c = cfg(HelperPolicy::Restructure { hoist: false }, 2);
        let jump2 = run_cascaded(&m, &w, &c);
        c.jump_out = false;
        let stall2 = run_cascaded(&m, &w, &c);
        assert!((stall2.loops[0].helper_coverage() - 1.0).abs() < 1e-12);
        assert!(jump2.loops[0].helper_coverage() < 1.0);

        let mut c4 = cfg(HelperPolicy::Restructure { hoist: false }, 4);
        let jump4 = run_cascaded(&m, &w, &c4);
        c4.jump_out = false;
        let stall4 = run_cascaded(&m, &w, &c4);
        let ratio = jump4.total_cycles() / stall4.total_cycles();
        assert!(
            (0.9..1.1).contains(&ratio),
            "at 4 procs jump-out and stalling should be within 10%: ratio {ratio:.3}"
        );
        // And jump-out must never deadlock progress: it is within 2x even
        // in the tight 2-processor case.
        assert!(jump2.total_cycles() < stall2.total_cycles() * 2.0);
    }

    #[test]
    fn repeated_calls_are_deterministic() {
        let w = memory_bound();
        let m = pentium_pro();
        let a = run_cascaded(&m, &w, &cfg(HelperPolicy::Restructure { hoist: true }, 4));
        let b = run_cascaded(&m, &w, &cfg(HelperPolicy::Restructure { hoist: true }, 4));
        assert_eq!(a.total_cycles(), b.total_cycles());
        assert_eq!(a.loops[0].exec.l2_misses, b.loops[0].exec.l2_misses);
    }
}

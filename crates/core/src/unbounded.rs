//! The unbounded-processor model of §3.4.
//!
//! The paper evaluates future machines by "running on a single processor,
//! which alternates between helper and execution phases. Helper loops are
//! allowed to run to completion, which models a system with enough
//! processors that each completes each helper phase before being signaled
//! to begin a new execution phase. Overall execution time is calculated by
//! summing the time spent in the execution phases and adding in the cost
//! of control transfers (one transfer per chunk)."
//!
//! This module reproduces that methodology exactly: one hierarchy, helper
//! and execution alternating per chunk, helper cycles excluded from the
//! makespan, `chunks x transfer_cost` added at the end.

use cascade_mem::{MachineConfig, System};
use cascade_trace::{Resolver, Workload};

use crate::chunk::ChunkPlan;
use crate::policy::HelperPolicy;
use crate::report::{LoopReport, PhaseTotals, RunReport, UNBOUNDED_PROCS};
use crate::walk::{exec_original, exec_restructured, helper_pack, helper_prefetch};

/// Parameters of an unbounded-model run.
#[derive(Debug, Clone)]
pub struct UnboundedConfig {
    /// Chunk byte budget.
    pub chunk_bytes: u64,
    /// Helper policy (helpers always run to completion in this model).
    pub policy: HelperPolicy,
    /// Number of invocations of the loop sequence; the last is measured.
    pub calls: usize,
    /// Flush caches between calls.
    pub flush_between_calls: bool,
}

impl Default for UnboundedConfig {
    fn default() -> Self {
        UnboundedConfig {
            chunk_bytes: 64 * 1024,
            policy: HelperPolicy::Restructure { hoist: true },
            calls: 1,
            flush_between_calls: true,
        }
    }
}

/// Simulate the unbounded-processor cascade of §3.4 and report the final
/// call.
pub fn run_unbounded(
    machine: &MachineConfig,
    workload: &Workload,
    cfg: &UnboundedConfig,
) -> RunReport {
    assert!(cfg.calls >= 1, "at least one call required");
    workload.validate();

    let mut space = workload.space.clone();
    let hoist = cfg.policy.hoists();
    let buffer_base = if cfg.policy.packs() {
        let mut buf_len = 1u64;
        for spec in &workload.loops {
            let plan = ChunkPlan::new(spec, cfg.chunk_bytes, machine.l1.line as u64);
            buf_len = buf_len.max(plan.iters_per_chunk() * spec.packed_bytes_per_iter(hoist));
        }
        let id = space.alloc_aligned("packbuf", 1, buf_len, 64);
        space.array(id).base
    } else {
        0
    };

    let res = Resolver::new(&space, &workload.index);
    let mut sys = System::new(machine.clone(), 1);
    let transfer = machine.transfer_cost as f64;
    let mut loops = Vec::new();

    for call in 0..cfg.calls {
        if call > 0 && cfg.flush_between_calls {
            sys.flush_all();
        }
        let measured = call == cfg.calls - 1;
        if measured {
            loops.clear();
        }
        for spec in &workload.loops {
            sys.begin_region();
            let plan = ChunkPlan::new(spec, cfg.chunk_bytes, machine.l1.line as u64);
            let mut exec_tot = PhaseTotals::default();
            let mut helper_tot = PhaseTotals::default();
            let mut makespan = 0.0f64;

            for j in 0..plan.num_chunks() {
                let range = plan.range(j);
                let range_len = range.end - range.start;
                let s0 = sys.snapshot();
                match cfg.policy {
                    HelperPolicy::None => {}
                    HelperPolicy::Prefetch => {
                        let h = helper_prefetch(&mut sys, 0, res, spec, range.clone(), None);
                        debug_assert!(h.completed(range_len));
                    }
                    HelperPolicy::Restructure { hoist } => {
                        let h = helper_pack(
                            &mut sys,
                            0,
                            res,
                            spec,
                            range.clone(),
                            buffer_base,
                            hoist,
                            None,
                        );
                        debug_assert!(h.completed(range_len));
                    }
                }
                let s1 = sys.snapshot();
                let exec_cycles = match cfg.policy {
                    HelperPolicy::None | HelperPolicy::Prefetch => {
                        exec_original(&mut sys, 0, res, spec, range.clone())
                    }
                    HelperPolicy::Restructure { hoist } => exec_restructured(
                        &mut sys,
                        0,
                        res,
                        spec,
                        range.clone(),
                        buffer_base,
                        hoist,
                        range_len,
                    ),
                };
                makespan += exec_cycles;
                if measured {
                    let s2 = sys.snapshot();
                    helper_tot.add_delta(&s1.since(&s0));
                    exec_tot.add_delta(&s2.since(&s1));
                }
            }

            makespan += plan.num_chunks() as f64 * transfer;
            if measured {
                loops.push(LoopReport {
                    name: spec.name.clone(),
                    cycles: makespan,
                    exec: exec_tot,
                    helper: helper_tot,
                    chunks: plan.num_chunks(),
                    helper_complete: if matches!(cfg.policy, HelperPolicy::None) {
                        0
                    } else {
                        plan.num_chunks()
                    },
                    helper_iters: if matches!(cfg.policy, HelperPolicy::None) {
                        0
                    } else {
                        spec.iters
                    },
                    iters: spec.iters,
                    timeline: crate::timeline::Timeline::default(),
                });
            }
        }
    }

    RunReport {
        machine: machine.name.to_string(),
        policy: cfg.policy.label().to_string(),
        nprocs: UNBOUNDED_PROCS,
        chunk_bytes: cfg.chunk_bytes,
        loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CascadeConfig;
    use crate::seq::run_sequential;
    use cascade_mem::machines::{future, pentium_pro};
    use cascade_trace::{AddressSpace, IndexStore, LoopSpec, Mode, Pattern, StreamRef};

    /// The paper's synthetic loop: X(IJ(i)) = X(IJ(i)) + A(i) + B(i),
    /// with IJ the identity and step k (1 = dense, 8 = sparse).
    fn synthetic(n: u64, k: i64) -> Workload {
        let mut space = AddressSpace::new();
        let x = space.alloc("x", 4, n);
        let a = space.alloc("a", 4, n);
        let b = space.alloc("b", 4, n);
        let ij = space.alloc("ij", 4, n);
        let mut index = IndexStore::new();
        index.set(ij, (0..n as u32).collect());
        let iters = n / k as u64;
        let spec = LoopSpec {
            name: format!("synthetic k={k}"),
            iters,
            refs: vec![
                StreamRef {
                    name: "a(i)",
                    array: a,
                    pattern: Pattern::Affine { base: 0, stride: k },
                    mode: Mode::Read,
                    bytes: 4,
                    hoistable: true,
                },
                StreamRef {
                    name: "b(i)",
                    array: b,
                    pattern: Pattern::Affine { base: 0, stride: k },
                    mode: Mode::Read,
                    bytes: 4,
                    hoistable: true,
                },
                StreamRef {
                    name: "x(ij(i))",
                    array: x,
                    pattern: Pattern::Indirect {
                        index: ij,
                        ibase: 0,
                        istride: k,
                    },
                    mode: Mode::Modify,
                    bytes: 4,
                    hoistable: false,
                },
            ],
            compute: 3.0,
            hoistable_compute: 1.0,
            hoist_result_bytes: 4,
        };
        Workload {
            space,
            index,
            loops: vec![spec],
        }
    }

    #[test]
    fn unbounded_restructure_gives_large_sparse_speedup() {
        let w = synthetic(1 << 20, 8);
        let m = pentium_pro();
        let base = run_sequential(&m, &w, 1, true);
        let cfg = UnboundedConfig {
            chunk_bytes: 32 * 1024,
            policy: HelperPolicy::Restructure { hoist: true },
            calls: 1,
            flush_between_calls: true,
        };
        let r = run_unbounded(&m, &w, &cfg);
        let s = r.overall_speedup_vs(&base);
        assert!(
            s > 4.0,
            "sparse synthetic loop should speed up strongly, got {s:.2}"
        );
    }

    #[test]
    fn sparse_beats_dense_speedup() {
        // The sparse loop has no spatial locality, so it is more memory
        // bound and gains more (paper: 16x sparse vs 4x dense on the PPro).
        let m = pentium_pro();
        let cfg = UnboundedConfig {
            chunk_bytes: 32 * 1024,
            policy: HelperPolicy::Restructure { hoist: true },
            calls: 1,
            flush_between_calls: true,
        };
        let dense_w = synthetic(1 << 20, 1);
        let sparse_w = synthetic(1 << 20, 8);
        let dense_s = run_unbounded(&m, &dense_w, &cfg)
            .overall_speedup_vs(&run_sequential(&m, &dense_w, 1, true));
        let sparse_s = run_unbounded(&m, &sparse_w, &cfg)
            .overall_speedup_vs(&run_sequential(&m, &sparse_w, 1, true));
        assert!(
            sparse_s > dense_s,
            "sparse ({sparse_s:.2}x) must out-speed dense ({dense_s:.2}x)"
        );
    }

    #[test]
    fn future_memory_scaling_increases_speedup() {
        let w = synthetic(1 << 19, 8);
        let today = pentium_pro();
        let tomorrow = future(&today, 4.0);
        let cfg = UnboundedConfig {
            chunk_bytes: 32 * 1024,
            policy: HelperPolicy::Restructure { hoist: true },
            calls: 1,
            flush_between_calls: true,
        };
        let s_today = run_unbounded(&today, &w, &cfg)
            .overall_speedup_vs(&run_sequential(&today, &w, 1, true));
        let s_tomorrow = run_unbounded(&tomorrow, &w, &cfg)
            .overall_speedup_vs(&run_sequential(&tomorrow, &w, 1, true));
        assert!(
            s_tomorrow > s_today,
            "slower memory must make cascading more valuable: {s_tomorrow:.2} vs {s_today:.2}"
        );
    }

    #[test]
    fn unbounded_upper_bounds_bounded_cascade() {
        let w = synthetic(1 << 18, 8);
        let m = pentium_pro();
        let policy = HelperPolicy::Restructure { hoist: true };
        let unb = run_unbounded(
            &m,
            &w,
            &UnboundedConfig {
                chunk_bytes: 64 * 1024,
                policy,
                calls: 1,
                flush_between_calls: true,
            },
        );
        let bounded = crate::cascade::run_cascaded(
            &m,
            &w,
            &CascadeConfig {
                nprocs: 4,
                chunk_bytes: 64 * 1024,
                policy,
                jump_out: true,
                calls: 1,
                flush_between_calls: true,
            },
        );
        assert!(
            unb.total_cycles() <= bounded.total_cycles() * 1.05,
            "unbounded ({:.3e}) should not lose to 4 procs ({:.3e})",
            unb.total_cycles(),
            bounded.total_cycles()
        );
    }

    #[test]
    fn reports_mark_unbounded_processor_count() {
        let w = synthetic(1 << 14, 1);
        let r = run_unbounded(&pentium_pro(), &w, &UnboundedConfig::default());
        assert_eq!(r.nprocs, UNBOUNDED_PROCS);
        assert_eq!(r.loops[0].helper_complete, r.loops[0].chunks);
    }
}

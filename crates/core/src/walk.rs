//! Phase walkers: the four ways a range of iterations is pushed through the
//! memory system.
//!
//! * [`exec_original`] — the loop body as written (sequential baseline, and
//!   execution phases under `None`/`Prefetch` policies);
//! * [`helper_prefetch`] — the shadow loop that loads upcoming operands
//!   (§2.1, "the simplest helper technique");
//! * [`helper_pack`] — sequential-buffer restructuring: read-only operands
//!   stream into a dense per-processor buffer in dynamic reference order,
//!   scatter indices are packed, to-be-written data is prefetched in place;
//! * [`exec_restructured`] — the execution phase that consumes the packed
//!   buffer sequentially and falls back to the original body for iterations
//!   the helper did not reach (jump-out leaves a partially packed chunk).
//!
//! All walkers go through the same [`Resolver`], so the reference streams
//! they generate are identical by construction — only *which processor*,
//! *which phase* and *which redundant accesses are elided* differ.

use std::ops::Range;

use cascade_mem::{Access, Op, Phase, StreamClass, System};
use cascade_trace::{LoopSpec, Mode, Pattern, Resolver};

/// Extra address-arithmetic cycles charged per indirect reference in the
/// original loop body (index load consumption, effective-address compute).
/// Restructuring eliminates this for packed streams — one of the §2.1
/// benefits ("may reduce the number of operations ... required to index
/// array data").
pub const INDIRECT_INDEXING_CYCLES: f64 = 1.0;

/// Loop-control cycles charged per iteration of any walked loop.
pub const LOOP_CONTROL_CYCLES: f64 = 1.0;

/// Cycles of packing work (store address generation, cursor bump) charged
/// per packed operand per iteration in the restructuring helper.
pub const PACK_CYCLES_PER_REF: f64 = 0.5;

fn n_indirect(spec: &LoopSpec) -> usize {
    spec.refs
        .iter()
        .filter(|r| matches!(r.pattern, Pattern::Indirect { .. }))
        .count()
}

/// Walk iterations `range` of the original loop body on processor `proc`,
/// charging execution-phase costs. Returns the exposed cycles.
pub fn exec_original(
    sys: &mut System,
    proc: usize,
    res: Resolver<'_>,
    spec: &LoopSpec,
    range: Range<u64>,
) -> f64 {
    let per_iter_compute =
        spec.compute + LOOP_CONTROL_CYCLES + INDIRECT_INDEXING_CYCLES * n_indirect(spec) as f64;
    let mut cycles = 0.0;
    for i in range {
        cycles += sys.charge(proc, per_iter_compute);
        cycles += body_original(sys, proc, res, spec, i, Phase::Execution);
    }
    cycles
}

/// The memory accesses of one original-body iteration (shared between the
/// execution walker above and the fallback path of [`exec_restructured`]).
fn body_original(
    sys: &mut System,
    proc: usize,
    res: Resolver<'_>,
    spec: &LoopSpec,
    i: u64,
    phase: Phase,
) -> f64 {
    let mut cycles = 0.0;
    for r in &spec.refs {
        if let Some(ix) = res.index_access(r, i) {
            cycles += sys.access(
                proc,
                Access {
                    addr: ix.addr,
                    bytes: ix.bytes,
                    op: Op::Read,
                    class: ix.class,
                },
                phase,
            );
        }
        let d = res.data_access(r, i);
        match r.mode {
            Mode::Read => {
                cycles += sys.access(
                    proc,
                    Access {
                        addr: d.addr,
                        bytes: d.bytes,
                        op: Op::Read,
                        class: d.class,
                    },
                    phase,
                );
            }
            Mode::Write => {
                cycles += sys.access(
                    proc,
                    Access {
                        addr: d.addr,
                        bytes: d.bytes,
                        op: Op::Write,
                        class: d.class,
                    },
                    phase,
                );
            }
            Mode::Modify => {
                cycles += sys.access(
                    proc,
                    Access {
                        addr: d.addr,
                        bytes: d.bytes,
                        op: Op::Read,
                        class: d.class,
                    },
                    phase,
                );
                cycles += sys.access(
                    proc,
                    Access {
                        addr: d.addr,
                        bytes: d.bytes,
                        op: Op::Write,
                        class: d.class,
                    },
                    phase,
                );
            }
        }
    }
    cycles
}

/// Outcome of a (possibly budget-limited) helper walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HelperOutcome {
    /// Cycles the helper consumed.
    pub cycles: f64,
    /// Iterations fully processed (counted from the start of the range).
    pub iters_done: u64,
}

impl HelperOutcome {
    /// Did the helper process its whole range?
    pub fn completed(&self, range_len: u64) -> bool {
        self.iters_done >= range_len
    }
}

/// Run the prefetch helper over `range` on `proc`: read index elements,
/// prefetch every operand line (including write targets — write-allocate
/// would otherwise miss). Stops early once `budget` cycles are exceeded
/// (the paper's jump-out-of-helper modification, §3.3); pass `None` to run
/// to completion.
pub fn helper_prefetch(
    sys: &mut System,
    proc: usize,
    res: Resolver<'_>,
    spec: &LoopSpec,
    range: Range<u64>,
    budget: Option<f64>,
) -> HelperOutcome {
    let per_iter_compute = LOOP_CONTROL_CYCLES + INDIRECT_INDEXING_CYCLES * n_indirect(spec) as f64;
    let mut cycles = 0.0;
    let mut done = 0u64;
    for i in range {
        cycles += sys.charge(proc, per_iter_compute);
        for r in &spec.refs {
            if let Some(ix) = res.index_access(r, i) {
                cycles += sys.access(
                    proc,
                    Access {
                        addr: ix.addr,
                        bytes: ix.bytes,
                        op: Op::Read,
                        class: ix.class,
                    },
                    Phase::Helper,
                );
            }
            let d = res.data_access(r, i);
            cycles += sys.access(
                proc,
                Access {
                    addr: d.addr,
                    bytes: d.bytes,
                    op: Op::Prefetch,
                    class: d.class,
                },
                Phase::Helper,
            );
        }
        done += 1;
        if let Some(b) = budget {
            if cycles >= b {
                break;
            }
        }
    }
    HelperOutcome {
        cycles,
        iters_done: done,
    }
}

/// Run the restructuring helper over `range` on `proc`: pack read-only
/// operands (or, with `hoist`, the precomputed results of read-only-only
/// computation) and scatter indices into the sequential buffer starting at
/// byte address `buffer_base`, and prefetch write targets in place.
///
/// The buffer layout is `packed_bytes_per_iter(hoist)` bytes per iteration,
/// written (and later read) as one dense stream.
#[allow(clippy::too_many_arguments)] // a phase is naturally parameterized by all of these
pub fn helper_pack(
    sys: &mut System,
    proc: usize,
    res: Resolver<'_>,
    spec: &LoopSpec,
    range: Range<u64>,
    buffer_base: u64,
    hoist: bool,
    budget: Option<f64>,
) -> HelperOutcome {
    let pbpi = spec.packed_bytes_per_iter(hoist);
    let hoist_compute = if hoist { spec.hoistable_compute } else { 0.0 };
    let mut cycles = 0.0;
    let mut done = 0u64;
    let start = range.start;
    for i in range {
        let mut cursor = buffer_base + (i - start) * pbpi;
        let mut hoisted_any = false;
        let mut packed_refs = 0usize;
        let mut iter_cycles = sys.charge(proc, LOOP_CONTROL_CYCLES + hoist_compute);
        for r in &spec.refs {
            match r.mode {
                Mode::Read => {
                    // Read the operand (through its index if indirect)...
                    if let Some(ix) = res.index_access(r, i) {
                        iter_cycles += sys.access(
                            proc,
                            Access {
                                addr: ix.addr,
                                bytes: ix.bytes,
                                op: Op::Read,
                                class: ix.class,
                            },
                            Phase::Helper,
                        );
                    }
                    let d = res.data_access(r, i);
                    iter_cycles += sys.access(
                        proc,
                        Access {
                            addr: d.addr,
                            bytes: d.bytes,
                            op: Op::Read,
                            class: d.class,
                        },
                        Phase::Helper,
                    );
                    // ...and stream it (or fold it into the hoisted result).
                    if hoist && r.hoistable {
                        hoisted_any = true;
                    } else {
                        iter_cycles += sys.access(
                            proc,
                            Access {
                                addr: cursor,
                                bytes: r.bytes,
                                op: Op::Write,
                                class: StreamClass::Affine,
                            },
                            Phase::Helper,
                        );
                        cursor += r.bytes as u64;
                        packed_refs += 1;
                    }
                }
                Mode::Write | Mode::Modify => {
                    if let Some(ix) = res.index_access(r, i) {
                        // Scatter indices are read-only data: pack them.
                        iter_cycles += sys.access(
                            proc,
                            Access {
                                addr: ix.addr,
                                bytes: ix.bytes,
                                op: Op::Read,
                                class: ix.class,
                            },
                            Phase::Helper,
                        );
                        iter_cycles += sys.access(
                            proc,
                            Access {
                                addr: cursor,
                                bytes: ix.bytes,
                                op: Op::Write,
                                class: StreamClass::Affine,
                            },
                            Phase::Helper,
                        );
                        cursor += ix.bytes as u64;
                        packed_refs += 1;
                    }
                    // The write target itself stays in place; warm it up.
                    let d = res.data_access(r, i);
                    iter_cycles += sys.access(
                        proc,
                        Access {
                            addr: d.addr,
                            bytes: d.bytes,
                            op: Op::Prefetch,
                            class: d.class,
                        },
                        Phase::Helper,
                    );
                }
            }
        }
        if hoisted_any {
            iter_cycles += sys.access(
                proc,
                Access {
                    addr: cursor,
                    bytes: spec.hoist_result_bytes,
                    op: Op::Write,
                    class: StreamClass::Affine,
                },
                Phase::Helper,
            );
            packed_refs += 1;
        }
        iter_cycles += sys.charge(proc, PACK_CYCLES_PER_REF * packed_refs as f64);
        cycles += iter_cycles;
        done += 1;
        if let Some(b) = budget {
            if cycles >= b {
                break;
            }
        }
    }
    HelperOutcome {
        cycles,
        iters_done: done,
    }
}

/// Walk the execution phase of a restructured chunk: the first
/// `packed_iters` iterations of `range` consume the sequential buffer at
/// `buffer_base`; any remainder (helper jumped out early) falls back to the
/// original body. Returns exposed cycles.
#[allow(clippy::too_many_arguments)] // a phase is naturally parameterized by all of these
pub fn exec_restructured(
    sys: &mut System,
    proc: usize,
    res: Resolver<'_>,
    spec: &LoopSpec,
    range: Range<u64>,
    buffer_base: u64,
    hoist: bool,
    packed_iters: u64,
) -> f64 {
    let pbpi = spec.packed_bytes_per_iter(hoist);
    let exec_compute = spec.exec_compute(hoist) + LOOP_CONTROL_CYCLES;
    let fallback_compute =
        spec.compute + LOOP_CONTROL_CYCLES + INDIRECT_INDEXING_CYCLES * n_indirect(spec) as f64;
    let start = range.start;
    let packed_end = (start + packed_iters).min(range.end);
    let mut cycles = 0.0;
    for i in range.clone() {
        if i < packed_end {
            cycles += sys.charge(proc, exec_compute);
            // One dense sequential read covering everything the helper
            // packed for this iteration.
            if pbpi > 0 {
                cycles += sys.access(
                    proc,
                    Access {
                        addr: buffer_base + (i - start) * pbpi,
                        bytes: pbpi as u32,
                        op: Op::Read,
                        class: StreamClass::Affine,
                    },
                    Phase::Execution,
                );
            }
            // Writes happen in place, exactly as in the original body; the
            // index value needed by an indirect write came from the buffer.
            for r in &spec.refs {
                if !r.mode.writes() {
                    continue;
                }
                let d = res.data_access(r, i);
                if matches!(r.mode, Mode::Modify) {
                    cycles += sys.access(
                        proc,
                        Access {
                            addr: d.addr,
                            bytes: d.bytes,
                            op: Op::Read,
                            class: d.class,
                        },
                        Phase::Execution,
                    );
                }
                cycles += sys.access(
                    proc,
                    Access {
                        addr: d.addr,
                        bytes: d.bytes,
                        op: Op::Write,
                        class: d.class,
                    },
                    Phase::Execution,
                );
            }
        } else {
            cycles += sys.charge(proc, fallback_compute);
            cycles += body_original(sys, proc, res, spec, i, Phase::Execution);
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_mem::machines::pentium_pro;
    use cascade_trace::{AddressSpace, IndexStore, StreamRef};

    /// x(ij(i)) += a(i) + b(i): the paper's synthetic loop shape.
    fn synthetic() -> (AddressSpace, IndexStore, LoopSpec) {
        let n = 4096u64;
        let mut s = AddressSpace::new();
        let x = s.alloc("x", 4, n);
        let a = s.alloc("a", 4, n);
        let b = s.alloc("b", 4, n);
        let ij = s.alloc("ij", 4, n);
        let mut idx = IndexStore::new();
        idx.set(ij, (0..n as u32).collect());
        let spec = LoopSpec {
            name: "synthetic".into(),
            iters: n,
            refs: vec![
                StreamRef {
                    name: "a(i)",
                    array: a,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 4,
                    hoistable: true,
                },
                StreamRef {
                    name: "b(i)",
                    array: b,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 4,
                    hoistable: true,
                },
                StreamRef {
                    name: "x(ij(i))",
                    array: x,
                    pattern: Pattern::Indirect {
                        index: ij,
                        ibase: 0,
                        istride: 1,
                    },
                    mode: Mode::Modify,
                    bytes: 4,
                    hoistable: false,
                },
            ],
            compute: 3.0,
            hoistable_compute: 1.0,
            hoist_result_bytes: 4,
        };
        spec.validate();
        (s, idx, spec)
    }

    #[test]
    fn prefetched_execution_is_faster_than_cold() {
        let (s, idx, spec) = synthetic();
        let res = Resolver::new(&s, &idx);

        let mut cold = System::new(pentium_pro(), 1);
        let cold_cycles = exec_original(&mut cold, 0, res, &spec, 0..spec.iters);

        let mut warm = System::new(pentium_pro(), 1);
        let h = helper_prefetch(&mut warm, 0, res, &spec, 0..spec.iters, None);
        assert!(h.completed(spec.iters));
        let warm_cycles = exec_original(&mut warm, 0, res, &spec, 0..spec.iters);

        assert!(
            warm_cycles < cold_cycles * 0.8,
            "prefetched exec {warm_cycles} should be well under cold {cold_cycles}"
        );
    }

    #[test]
    fn restructured_execution_is_faster_than_prefetched() {
        let (mut s, idx, spec) = synthetic();
        let buf_len = spec.iters * spec.packed_bytes_per_iter(true);
        let buf = s.alloc("buf", 1, buf_len);
        let buffer_base = s.array(buf).base;
        let res = Resolver::new(&s, &idx);

        let mut pre = System::new(pentium_pro(), 1);
        helper_prefetch(&mut pre, 0, res, &spec, 0..spec.iters, None);
        let pre_cycles = exec_original(&mut pre, 0, res, &spec, 0..spec.iters);

        let mut rst = System::new(pentium_pro(), 1);
        let h = helper_pack(
            &mut rst,
            0,
            res,
            &spec,
            0..spec.iters,
            buffer_base,
            true,
            None,
        );
        assert!(h.completed(spec.iters));
        let rst_cycles = exec_restructured(
            &mut rst,
            0,
            res,
            &spec,
            0..spec.iters,
            buffer_base,
            true,
            spec.iters,
        );

        assert!(
            rst_cycles < pre_cycles,
            "restructured {rst_cycles} should beat prefetched {pre_cycles}"
        );
    }

    #[test]
    fn budget_limits_helper_progress() {
        let (s, idx, spec) = synthetic();
        let res = Resolver::new(&s, &idx);
        let mut sys = System::new(pentium_pro(), 1);
        let h = helper_prefetch(&mut sys, 0, res, &spec, 0..spec.iters, Some(100.0));
        assert!(
            h.iters_done < spec.iters,
            "a 100-cycle budget cannot cover the loop"
        );
        assert!(
            h.iters_done >= 1,
            "at least one iteration must be attempted"
        );
        assert!(!h.completed(spec.iters));
    }

    #[test]
    fn partial_restructure_falls_back_to_original_body() {
        let (mut s, idx, spec) = synthetic();
        let buf_len = spec.iters * spec.packed_bytes_per_iter(false);
        let buf = s.alloc("buf", 1, buf_len);
        let buffer_base = s.array(buf).base;
        let res = Resolver::new(&s, &idx);

        let mut sys = System::new(pentium_pro(), 1);
        let packed = 100u64;
        helper_pack(&mut sys, 0, res, &spec, 0..packed, buffer_base, false, None);
        // Executing the full range with only 100 packed iterations must not
        // panic and must cost more than a fully packed run.
        let part = exec_restructured(
            &mut sys,
            0,
            res,
            &spec,
            0..spec.iters,
            buffer_base,
            false,
            packed,
        );

        let mut full_sys = System::new(pentium_pro(), 1);
        let buf_full = spec.iters * spec.packed_bytes_per_iter(false);
        assert!(buf_len >= buf_full);
        helper_pack(
            &mut full_sys,
            0,
            res,
            &spec,
            0..spec.iters,
            buffer_base,
            false,
            None,
        );
        let full = exec_restructured(
            &mut full_sys,
            0,
            res,
            &spec,
            0..spec.iters,
            buffer_base,
            false,
            spec.iters,
        );
        assert!(
            part > full,
            "partial packing {part} must cost more than full {full}"
        );
    }

    #[test]
    fn hoisting_reduces_execution_cycles_further() {
        let (mut s, idx, spec) = synthetic();
        let buf_len = spec.iters
            * spec
                .packed_bytes_per_iter(false)
                .max(spec.packed_bytes_per_iter(true));
        let buf = s.alloc("buf", 1, buf_len);
        let base = s.array(buf).base;
        let res = Resolver::new(&s, &idx);

        let mut no_hoist = System::new(pentium_pro(), 1);
        helper_pack(
            &mut no_hoist,
            0,
            res,
            &spec,
            0..spec.iters,
            base,
            false,
            None,
        );
        let c_no = exec_restructured(
            &mut no_hoist,
            0,
            res,
            &spec,
            0..spec.iters,
            base,
            false,
            spec.iters,
        );

        let mut hoist = System::new(pentium_pro(), 1);
        helper_pack(&mut hoist, 0, res, &spec, 0..spec.iters, base, true, None);
        let c_h = exec_restructured(
            &mut hoist,
            0,
            res,
            &spec,
            0..spec.iters,
            base,
            true,
            spec.iters,
        );

        assert!(
            c_h < c_no,
            "hoisted exec {c_h} should beat non-hoisted {c_no}"
        );
    }

    #[test]
    fn empty_ranges_cost_nothing() {
        let (s, idx, spec) = synthetic();
        let res = Resolver::new(&s, &idx);
        let mut sys = System::new(pentium_pro(), 1);
        assert_eq!(exec_original(&mut sys, 0, res, &spec, 5..5), 0.0);
        let h = helper_prefetch(&mut sys, 0, res, &spec, 5..5, None);
        assert_eq!((h.cycles, h.iters_done), (0.0, 0));
        let h = helper_pack(&mut sys, 0, res, &spec, 5..5, 1 << 30, false, Some(0.0));
        assert_eq!((h.cycles, h.iters_done), (0.0, 0));
        assert_eq!(
            exec_restructured(&mut sys, 0, res, &spec, 5..5, 1 << 30, false, 0),
            0.0
        );
    }

    #[test]
    fn restructured_with_nothing_packed_equals_fallback_body() {
        // packed_iters = 0 must walk the original body for every
        // iteration — identical cycles to exec_original on an identical
        // fresh system.
        let (s, idx, spec) = synthetic();
        let res = Resolver::new(&s, &idx);
        let mut a = System::new(pentium_pro(), 1);
        let ca = exec_original(&mut a, 0, res, &spec, 0..512);
        let mut b = System::new(pentium_pro(), 1);
        let cb = exec_restructured(&mut b, 0, res, &spec, 0..512, 1 << 30, false, 0);
        assert_eq!(
            ca, cb,
            "zero packed iterations must degrade to the original body"
        );
        assert_eq!(
            a.snapshot().total().l2.misses,
            b.snapshot().total().l2.misses
        );
    }

    #[test]
    fn walkers_touch_identical_data_lines() {
        // The prefetch helper must cover every line the execution touches:
        // after a completed helper, execution takes no memory-line fetches.
        let (s, idx, spec) = synthetic();
        let res = Resolver::new(&s, &idx);
        let mut sys = System::new(pentium_pro(), 1);
        // Footprint: 4 arrays x 16KB = 64KB; fits the 512KB L2.
        helper_prefetch(&mut sys, 0, res, &spec, 0..spec.iters, None);
        let before = sys.snapshot().total().mem_lines;
        exec_original(&mut sys, 0, res, &spec, 0..spec.iters);
        let after = sys.snapshot().total().mem_lines;
        assert_eq!(
            before, after,
            "execution after a full prefetch must not touch memory"
        );
    }
}

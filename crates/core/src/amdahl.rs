//! Whole-application projection (the paper's motivation, §1).
//!
//! "Amdahl's Law tells us that as parallelization becomes increasingly
//! effective, any unparallelized loop becomes an increasingly dominant
//! performance bottleneck." This module closes the loop: given a
//! program's parallelizable fraction and a measured cascaded speedup for
//! its sequential remainder, it projects whole-application speedups with
//! and without cascaded execution — e.g. wave5, where PARMVR alone is
//! ~50% of sequential runtime (§3.1).

/// A program decomposed into a perfectly-parallelizable fraction and a
/// sequential remainder (time fractions of the 1-processor execution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmdahlModel {
    /// Fraction of 1-processor runtime that parallelizes perfectly,
    /// in [0, 1]. The remainder is the unparallelized (cascadable) part.
    pub parallel_fraction: f64,
}

impl AmdahlModel {
    /// Build a model; panics outside [0, 1].
    pub fn new(parallel_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&parallel_fraction),
            "parallel fraction must be in [0,1], got {parallel_fraction}"
        );
        AmdahlModel { parallel_fraction }
    }

    /// Whole-application speedup on `nprocs` processors when the
    /// sequential remainder itself runs `seq_speedup` times faster
    /// (e.g. under cascaded execution on those same processors).
    ///
    /// `seq_speedup = 1.0` gives classic Amdahl.
    pub fn overall_speedup(&self, nprocs: usize, seq_speedup: f64) -> f64 {
        assert!(nprocs >= 1, "need at least one processor");
        assert!(seq_speedup > 0.0, "sequential speedup must be positive");
        let p = self.parallel_fraction;
        1.0 / (p / nprocs as f64 + (1.0 - p) / seq_speedup)
    }

    /// Classic Amdahl speedup (sequential part untouched).
    pub fn classic(&self, nprocs: usize) -> f64 {
        self.overall_speedup(nprocs, 1.0)
    }

    /// The asymptotic (infinite-processor) speedup ceiling when the
    /// sequential remainder runs `seq_speedup` times faster. Returns
    /// `f64::INFINITY` for a fully parallel program.
    pub fn ceiling(&self, seq_speedup: f64) -> f64 {
        assert!(seq_speedup > 0.0);
        let serial = 1.0 - self.parallel_fraction;
        if serial == 0.0 {
            f64::INFINITY
        } else {
            seq_speedup / serial
        }
    }

    /// Fraction of the *parallel-execution* time spent in the sequential
    /// remainder (how dominant the bottleneck has become on `nprocs`
    /// processors), with the remainder sped up `seq_speedup` times.
    pub fn sequential_share(&self, nprocs: usize, seq_speedup: f64) -> f64 {
        let p = self.parallel_fraction;
        let seq = (1.0 - p) / seq_speedup;
        let par = p / nprocs as f64;
        seq / (seq + par)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_amdahl_known_values() {
        let m = AmdahlModel::new(0.5);
        assert!((m.classic(1) - 1.0).abs() < 1e-12);
        // p=0.5, P=4: 1/(0.125+0.5) = 1.6
        assert!((m.classic(4) - 1.6).abs() < 1e-12);
        // ceiling without cascading: 1/(1-p) = 2
        assert!((m.ceiling(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cascading_raises_the_ceiling_proportionally() {
        let m = AmdahlModel::new(0.5);
        assert!((m.ceiling(1.7) - 3.4).abs() < 1e-12);
        assert!((m.ceiling(4.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn wave5_projection_shape() {
        // wave5: PARMVR ~50% of sequential runtime. On 8 processors with
        // the paper's R10000 cascaded speedup of 1.7 for that remainder:
        let m = AmdahlModel::new(0.5);
        let without = m.classic(8); // 1/(0.0625+0.5) = 1.778
        let with = m.overall_speedup(8, 1.7); // 1/(0.0625+0.294) = 2.804
        assert!((without - 1.7778).abs() < 1e-3);
        assert!((with - 2.8044).abs() < 1e-3);
        assert!(
            with / without > 1.5,
            "cascading must matter at the app level"
        );
    }

    #[test]
    fn sequential_share_grows_with_processors() {
        let m = AmdahlModel::new(0.9);
        let share4 = m.sequential_share(4, 1.0);
        let share64 = m.sequential_share(64, 1.0);
        assert!(share64 > share4, "the bottleneck dominates as P grows");
        assert!(
            share64 > 0.8,
            "at 64 procs a 10% serial part dominates: {share64}"
        );
        // Cascading the remainder pushes the share back down.
        assert!(m.sequential_share(64, 3.0) < share64);
    }

    #[test]
    fn fully_parallel_program_has_infinite_ceiling() {
        let m = AmdahlModel::new(1.0);
        assert!(m.ceiling(1.0).is_infinite());
        assert!((m.classic(8) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn fully_serial_program_speedup_is_exactly_seq_speedup() {
        let m = AmdahlModel::new(0.0);
        assert!((m.overall_speedup(16, 2.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "parallel fraction")]
    fn rejects_out_of_range_fraction() {
        AmdahlModel::new(1.5);
    }
}

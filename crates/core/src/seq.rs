//! The sequential baseline: one processor executes every loop as written.
//! Every speedup in the paper is measured against this.

use cascade_mem::{MachineConfig, System};
use cascade_trace::{Resolver, Workload};

use crate::report::{LoopReport, PhaseTotals, RunReport};
use crate::walk::exec_original;

/// Run the workload's loop sequence `calls` times on a single processor of
/// `machine` and report the final call (the paper measures the 12th of
/// ~5000 PARMVR calls — a steady-state call, which the last one is).
///
/// With `flush_between_calls` the caches are emptied between calls,
/// modelling the application's intervening parallel sections displacing the
/// loop data.
pub fn run_sequential(
    machine: &MachineConfig,
    workload: &Workload,
    calls: usize,
    flush_between_calls: bool,
) -> RunReport {
    assert!(calls >= 1, "at least one call required");
    workload.validate();
    let mut sys = System::new(machine.clone(), 1);
    let res = Resolver::new(&workload.space, &workload.index);
    let mut loops = Vec::new();

    for call in 0..calls {
        if call > 0 && flush_between_calls {
            sys.flush_all();
        }
        let measured = call == calls - 1;
        if measured {
            loops.clear();
        }
        for spec in &workload.loops {
            sys.begin_region();
            let before = sys.snapshot();
            let cycles = exec_original(&mut sys, 0, res, spec, 0..spec.iters);
            if measured {
                let mut exec = PhaseTotals::default();
                exec.add_delta(&sys.snapshot().since(&before));
                loops.push(LoopReport {
                    name: spec.name.clone(),
                    cycles,
                    exec,
                    helper: PhaseTotals::default(),
                    chunks: 0,
                    helper_complete: 0,
                    helper_iters: 0,
                    iters: spec.iters,
                    timeline: crate::timeline::Timeline::default(),
                });
            }
        }
    }

    RunReport {
        machine: machine.name.to_string(),
        policy: "original".to_string(),
        nprocs: 1,
        chunk_bytes: 0,
        loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_mem::machines::pentium_pro;
    use cascade_trace::{AddressSpace, IndexStore, LoopSpec, Mode, Pattern, StreamRef};

    fn tiny_workload() -> Workload {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 8, 1 << 12);
        let b = space.alloc("b", 8, 1 << 12);
        let spec = LoopSpec {
            name: "triad".into(),
            iters: 1 << 12,
            refs: vec![
                StreamRef {
                    name: "a(i)",
                    array: a,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Read,
                    bytes: 8,
                    hoistable: false,
                },
                StreamRef {
                    name: "b(i)",
                    array: b,
                    pattern: Pattern::Affine { base: 0, stride: 1 },
                    mode: Mode::Write,
                    bytes: 8,
                    hoistable: false,
                },
            ],
            compute: 2.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        };
        Workload {
            space,
            index: IndexStore::new(),
            loops: vec![spec],
        }
    }

    #[test]
    fn baseline_reports_one_entry_per_loop() {
        let r = run_sequential(&pentium_pro(), &tiny_workload(), 2, true);
        assert_eq!(r.loops.len(), 1);
        assert_eq!(r.nprocs, 1);
        assert!(r.loops[0].cycles > 0.0);
        assert!(r.loops[0].exec.l1_misses > 0, "cold data must miss");
    }

    #[test]
    fn flushing_between_calls_keeps_misses_cold() {
        let w = tiny_workload();
        // 64KB of data fits the 512KB L2: without flushing, call 2 hits.
        let warm = run_sequential(&pentium_pro(), &w, 2, false);
        let cold = run_sequential(&pentium_pro(), &w, 2, true);
        assert!(
            cold.loops[0].exec.l2_misses > warm.loops[0].exec.l2_misses,
            "flushed call should miss more: cold {} vs warm {}",
            cold.loops[0].exec.l2_misses,
            warm.loops[0].exec.l2_misses
        );
        assert!(cold.total_cycles() > warm.total_cycles());
    }

    #[test]
    fn single_call_equals_last_of_identical_flushed_calls() {
        let w = tiny_workload();
        let one = run_sequential(&pentium_pro(), &w, 1, true);
        let three = run_sequential(&pentium_pro(), &w, 3, true);
        assert!((one.total_cycles() - three.total_cycles()).abs() < 1e-6);
        assert_eq!(one.loops[0].exec.l2_misses, three.loops[0].exec.l2_misses);
    }
}

//! The workspace's one hash function.
//!
//! FNV-1a 64 is cheap, dependency-free, and stable across platforms and
//! releases — exactly what on-disk checkpoint manifests and golden files
//! need. It is **not** collision-resistant against an adversary; it
//! detects corruption and drift, nothing more. Kept in `cascade-core` so
//! the checkpoint writer, its adversarial tests, and any future consumer
//! agree on the same bytes-to-sum mapping by construction.

/// FNV-1a 64 of `bytes` (offset basis `0xcbf29ce484222325`, prime
/// `0x100000001b3`).
///
/// ```
/// // The standard FNV-1a 64 test vectors.
/// assert_eq!(cascade_core::fnv64(b""), 0xcbf29ce484222325);
/// assert_eq!(cascade_core::fnv64(b"a"), 0xaf63dc4c8601ec8c);
/// assert_eq!(cascade_core::fnv64(b"foobar"), 0x85944171f73967e8);
/// ```
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::fnv64;

    #[test]
    fn matches_reference_vectors() {
        // From the FNV reference implementation's test suite.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn is_byte_order_sensitive() {
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
        assert_ne!(fnv64(b"\x00"), fnv64(b""));
    }
}

//! Helper-phase policies (§2.1 of the paper).

/// What a processor does with its helper phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelperPolicy {
    /// Helpers idle. Cascading still happens (chunks still rotate across
    /// processors, transfers still cost cycles) — this is the ablation that
    /// isolates the memory-state-optimization benefit from the rotation
    /// itself. Expect a slight *slowdown* versus sequential execution.
    None,
    /// The simplest helper: execute a shadow version of the loop body that
    /// loads (prefetches) the operands of the processor's next chunk into
    /// its caches. "Prefetched" in the paper's figures.
    Prefetch,
    /// Stream all read-only operands, in dynamic reference order, into a
    /// per-processor *sequential buffer*; the execution phase consumes them
    /// as a dense sequential stream. Scatter indices are packed too; data
    /// that will be written is prefetched in place. "Restructured" in the
    /// paper's figures.
    Restructure {
        /// Additionally evaluate computation that involves only read-only
        /// values during the helper phase, storing results (rather than raw
        /// operands) in the buffer (§2.1, last benefit listed).
        hoist: bool,
    },
}

impl HelperPolicy {
    /// Short label used in reports ("none", "prefetched", "restructured",
    /// "restructured+hoist").
    pub fn label(&self) -> &'static str {
        match self {
            HelperPolicy::None => "none",
            HelperPolicy::Prefetch => "prefetched",
            HelperPolicy::Restructure { hoist: false } => "restructured",
            HelperPolicy::Restructure { hoist: true } => "restructured+hoist",
        }
    }

    /// Does this policy use a sequential buffer?
    pub fn packs(&self) -> bool {
        matches!(self, HelperPolicy::Restructure { .. })
    }

    /// Does this policy hoist read-only computation into the helper?
    pub fn hoists(&self) -> bool {
        matches!(self, HelperPolicy::Restructure { hoist: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let all = [
            HelperPolicy::None,
            HelperPolicy::Prefetch,
            HelperPolicy::Restructure { hoist: false },
            HelperPolicy::Restructure { hoist: true },
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn classification_helpers() {
        assert!(!HelperPolicy::Prefetch.packs());
        assert!(HelperPolicy::Restructure { hoist: false }.packs());
        assert!(!HelperPolicy::Restructure { hoist: false }.hoists());
        assert!(HelperPolicy::Restructure { hoist: true }.hoists());
    }
}

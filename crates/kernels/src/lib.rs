//! # cascade-kernels — classically unparallelizable loops
//!
//! The paper motivates cascaded execution with loops "for which the
//! compiler cannot find a legal or efficient parallel realization". This
//! crate provides the canonical population of such loops beyond wave5's
//! particle mover, so the technique can be evaluated across loop classes:
//!
//! | kernel | why it resists parallelization | memory shape |
//! |---|---|---|
//! | [`triangular_solve`] | loop-carried through the solution vector | affine row data + gather of earlier results |
//! | [`pointer_chase`] | address of iteration `i+1` is data of iteration `i` | dependent gather chain |
//! | [`iir_recurrence`] | `y[i] = a*y[i-1] + x[i]` | streaming with a carried scalar chain |
//! | [`fused_stream`] | recurrence fused with an independent store (the fission target) | two streaming statements, one carried |
//! | [`histogram`] | colliding scatter-add (order-sensitive in FP) | gather index + scatter |
//! | [`seq_spmv`] | scatter-accumulate into the result vector | gather x, scatter y, streaming values |
//!
//! Each kernel is a [`Workload`] (+ initialized [`Arena`]) exactly like
//! `cascade-wave5`'s loops, so the simulators run all of them unchanged.
//! All six also run on real threads: the `cascade-analyze` dependence
//! analyzer proves a helper-safety verdict per operand, and kernels with
//! loop-carried reads (`triangular_solve`, `iir_recurrence`) get a
//! `HorizonSafe { lag }` verdict — the runner then keeps helpers at most
//! `lag` iterations past the committed frontier, which is exactly the
//! distance the flow dependence allows. Use [`Kernel::report`] for the
//! per-operand verdicts and [`Kernel::rt_safe`] for the derived gate.

#![warn(missing_docs)]

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cascade_trace::{
    AddressSpace, Arena, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};

/// A built kernel: workload + data + metadata.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name (stable identifier).
    pub name: &'static str,
    /// Single-loop workload.
    pub workload: Workload,
    /// Initialized backing data.
    pub arena: Arena,
    /// Lazily computed analyzer report (the analysis replays index
    /// contents, so repeated `rt_safe()` calls must not re-run it).
    report: OnceLock<cascade_analyze::WorkloadReport>,
}

impl Kernel {
    /// The `cascade-analyze` helper-safety report for this kernel's
    /// workload: per-operand verdicts, footprints, and diagnostics.
    /// Computed on first call and cached for the kernel's lifetime (the
    /// built-in constructors never mutate the workload afterwards).
    pub fn report(&self) -> &cascade_analyze::WorkloadReport {
        self.report
            .get_or_init(|| cascade_analyze::analyze_workload(&self.workload))
    }

    /// Whether the real-thread interpreter accepts this kernel, derived
    /// from the analyzer's verdicts (no `Unsafe` operand, no error
    /// diagnostics). Loops with loop-carried reads still qualify — they
    /// run with a helper horizon instead of unrestricted helpers.
    pub fn rt_safe(&self) -> bool {
        self.report().rt_ok()
    }
}

fn finish(
    name: &'static str,
    space: AddressSpace,
    index: IndexStore,
    spec: LoopSpec,
    arena: Arena,
) -> Kernel {
    spec.validate();
    let workload = Workload {
        space,
        index,
        loops: vec![spec],
    };
    workload.validate();
    Kernel {
        name,
        workload,
        arena,
        report: OnceLock::new(),
    }
}

fn fill_f64(arena: &mut Arena, space: &AddressSpace, id: cascade_trace::ArrayId, rng: &mut StdRng) {
    for i in 0..space.array(id).len {
        arena.set_f64(space, id, i, rng.gen_range(0.01..1.0));
    }
}

/// Sparse lower-triangular solve, flattened over rows with a fixed number
/// of off-diagonal entries per row:
/// `x(i) = (b(i) - sum_k L(i,k) * x(col(i,k))) / d(i)`.
///
/// The gather of earlier `x` entries is the loop-carried dependence: the
/// analyzer proves it `HorizonSafe { lag: 1 }` (every gathered index is
/// strictly below the current row), so the kernel runs on real threads
/// with helpers held to the committed frontier.
pub fn triangular_solve(n: u64, nnz_per_row: u64, seed: u64) -> Kernel {
    assert!(n >= 16 && nnz_per_row >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut space = AddressSpace::new();
    let x = space.alloc("x", 8, n);
    let b = space.alloc("b", 8, n);
    let d = space.alloc("d", 8, n);
    let lvals = space.alloc("L", 8, n * nnz_per_row);
    let cols = space.alloc("col", 4, n * nnz_per_row);

    let mut index = IndexStore::new();
    // Row i references earlier unknowns only (j < max(i,1)).
    let col_data: Vec<u32> = (0..n)
        .flat_map(|i| {
            let hi = i.max(1);
            (0..nnz_per_row).map(move |k| ((i * 31 + k * 17 + 7) % hi) as u32)
        })
        .collect();
    index.set(cols, col_data);

    // One "iteration" = one row; the gather walks nnz entries via a
    // strided indirect pattern (istride = nnz_per_row picks the row's
    // first entry; the remaining entries are modelled as part of the
    // row's affine value stream — the dominant traffic).
    let spec = LoopSpec {
        name: format!("tri-solve n={n} nnz={nnz_per_row}"),
        iters: n,
        refs: vec![
            StreamRef {
                name: "L(i,*)",
                array: lvals,
                pattern: Pattern::Affine {
                    base: 0,
                    stride: nnz_per_row as i64,
                },
                mode: Mode::Read,
                bytes: 8,
                hoistable: true,
            },
            StreamRef {
                name: "b(i)",
                array: b,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: true,
            },
            StreamRef {
                name: "d(i)",
                array: d,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: true,
            },
            StreamRef {
                name: "x(col(i,0))",
                array: x,
                pattern: Pattern::Indirect {
                    index: cols,
                    ibase: 0,
                    istride: nnz_per_row as i64,
                },
                mode: Mode::Read,
                bytes: 8,
                hoistable: false, // depends on x written this loop: not hoistable
            },
            StreamRef {
                name: "x(i)",
                array: x,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Write,
                bytes: 8,
                hoistable: false,
            },
        ],
        compute: 10.0 + 4.0 * nnz_per_row as f64,
        hoistable_compute: 3.0,
        hoist_result_bytes: 8,
    };
    let mut arena = Arena::new(&space);
    for id in [b, d, lvals] {
        fill_f64(&mut arena, &space, id, &mut rng);
    }
    arena.install_indices(&space, &index);
    finish("triangular_solve", space, index, spec, arena)
}

/// Linked-list pointer chase: visit `n` nodes in a precomputed random
/// chain order, reading each node's payload. The chain order array *is*
/// the simulated pointer data. Read-only: runs everywhere.
pub fn pointer_chase(n: u64, payload_bytes: u32, seed: u64) -> Kernel {
    assert!(n >= 16);
    assert!(payload_bytes == 8, "payload modelled as one 8-byte field");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut space = AddressSpace::new();
    let nodes = space.alloc("nodes", 8, n);
    let chain = space.alloc("chain", 4, n);

    // A random permutation = a maximally cache-hostile chain.
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut index = IndexStore::new();
    index.set(chain, order);

    let spec = LoopSpec {
        name: format!("pointer-chase n={n}"),
        iters: n,
        refs: vec![StreamRef {
            name: "nodes(chain(i))",
            array: nodes,
            pattern: Pattern::Indirect {
                index: chain,
                ibase: 0,
                istride: 1,
            },
            mode: Mode::Read,
            bytes: payload_bytes,
            hoistable: true,
        }],
        compute: 4.0,
        hoistable_compute: 2.0,
        hoist_result_bytes: 8,
    };
    let mut arena = Arena::new(&space);
    fill_f64(&mut arena, &space, nodes, &mut rng);
    arena.install_indices(&space, &index);
    finish("pointer_chase", space, index, spec, arena)
}

/// First-order IIR recurrence `y(i) = a * y(i-1) + x(i)`: the classic
/// un-vectorizable filter. The carried read (`y` read at `i-1`, written
/// at `i`) is `HorizonSafe { lag: 1 }`, so helpers trail the committed
/// frontier by at most one iteration and the kernel runs on real threads.
pub fn iir_recurrence(n: u64, seed: u64) -> Kernel {
    assert!(n >= 16);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut space = AddressSpace::new();
    let y = space.alloc("y", 8, n + 1);
    let xv = space.alloc("x", 8, n);
    let spec = LoopSpec {
        name: format!("iir y(i)=a*y(i-1)+x(i), n={n}"),
        iters: n,
        refs: vec![
            StreamRef {
                name: "x(i)",
                array: xv,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: true,
            },
            StreamRef {
                name: "y(i-1)",
                array: y,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: false,
            },
            StreamRef {
                name: "y(i)",
                array: y,
                pattern: Pattern::Affine { base: 1, stride: 1 },
                mode: Mode::Write,
                bytes: 8,
                hoistable: false,
            },
        ],
        compute: 6.0,
        hoistable_compute: 1.0,
        hoist_result_bytes: 8,
    };
    let mut arena = Arena::new(&space);
    fill_f64(&mut arena, &space, xv, &mut rng);
    arena.install_indices(&space, &IndexStore::new());
    finish("iir_recurrence", space, IndexStore::new(), spec, arena)
}

/// An IIR recurrence *fused* with an independent stream store in one
/// loop body: `b(i+1) = f(b(i), a(i)); c(i) = g(a(i), b(i))`.
///
/// Classic loop-fission material: the transformation planner
/// (`cascade_analyze::plan`) proves the body splits into a sequential
/// recurrence residue (the `b` statement, carried at lag 1) followed by
/// a fully parallel (DOALL) sub-loop (the `c` statement) — the
/// decomposition the paper's cascaded mode leaves on the table when it
/// treats the whole loop as one sequential residue.
pub fn fused_stream(n: u64, seed: u64) -> Kernel {
    assert!(n >= 16);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut space = AddressSpace::new();
    let a = space.alloc("a", 8, n);
    let b = space.alloc("b", 8, n + 1);
    let c = space.alloc("c", 8, n);
    let spec = LoopSpec {
        name: format!("fused b(i+1)=f(b(i),a(i)); c(i)=g(a(i),b(i)), n={n}"),
        iters: n,
        refs: vec![
            StreamRef {
                name: "a(i)",
                array: a,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: true,
            },
            StreamRef {
                name: "b(i)",
                array: b,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: false,
            },
            StreamRef {
                name: "b(i+1)",
                array: b,
                pattern: Pattern::Affine { base: 1, stride: 1 },
                mode: Mode::Write,
                bytes: 8,
                hoistable: false,
            },
            StreamRef {
                name: "c(i)",
                array: c,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Write,
                bytes: 8,
                hoistable: false,
            },
        ],
        compute: 8.0,
        hoistable_compute: 1.0,
        hoist_result_bytes: 8,
    };
    let mut arena = Arena::new(&space);
    fill_f64(&mut arena, &space, a, &mut rng);
    arena.install_indices(&space, &IndexStore::new());
    finish("fused_stream", space, IndexStore::new(), spec, arena)
}

/// Histogram accumulation `hist(key(i)) += w(i)` with colliding keys:
/// order-sensitive in floating point, so it must stay sequential.
/// Runs everywhere (the paper's scatter-add class).
pub fn histogram(n: u64, buckets: u64, seed: u64) -> Kernel {
    assert!(n >= 16 && buckets >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut space = AddressSpace::new();
    let hist = space.alloc("hist", 8, buckets);
    let w = space.alloc("w", 8, n);
    let key = space.alloc("key", 4, n);
    let mut index = IndexStore::new();
    index.set(
        key,
        (0..n).map(|_| rng.gen_range(0..buckets) as u32).collect(),
    );
    let spec = LoopSpec {
        name: format!("histogram n={n} buckets={buckets}"),
        iters: n,
        refs: vec![
            StreamRef {
                name: "w(i)",
                array: w,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: true,
            },
            StreamRef {
                name: "hist(key(i))",
                array: hist,
                pattern: Pattern::Indirect {
                    index: key,
                    ibase: 0,
                    istride: 1,
                },
                mode: Mode::Modify,
                bytes: 8,
                hoistable: false,
            },
        ],
        compute: 4.0,
        hoistable_compute: 1.0,
        hoist_result_bytes: 8,
    };
    let mut arena = Arena::new(&space);
    fill_f64(&mut arena, &space, w, &mut rng);
    arena.install_indices(&space, &index);
    finish("histogram", space, index, spec, arena)
}

/// Sequentialized sparse matrix-vector product over a nonzero stream:
/// `y(row(k)) += A(k) * x(col(k))`. The scatter-accumulate into `y`
/// defeats naive parallelization. Runs everywhere.
pub fn seq_spmv(nnz: u64, nrows: u64, ncols: u64, seed: u64) -> Kernel {
    assert!(nnz >= 16 && nrows >= 2 && ncols >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut space = AddressSpace::new();
    let y = space.alloc("y", 8, nrows);
    let xv = space.alloc("x", 8, ncols);
    let a = space.alloc("A", 8, nnz);
    let rows = space.alloc("row", 4, nnz);
    let cols = space.alloc("col", 4, nnz);
    let mut index = IndexStore::new();
    // Row indices mostly sorted (CSR-ish traversal), columns random.
    index.set(rows, (0..nnz).map(|k| ((k * nrows) / nnz) as u32).collect());
    index.set(
        cols,
        (0..nnz).map(|_| rng.gen_range(0..ncols) as u32).collect(),
    );
    let spec = LoopSpec {
        name: format!("seq-spmv nnz={nnz}"),
        iters: nnz,
        refs: vec![
            StreamRef {
                name: "A(k)",
                array: a,
                pattern: Pattern::Affine { base: 0, stride: 1 },
                mode: Mode::Read,
                bytes: 8,
                hoistable: true,
            },
            StreamRef {
                name: "x(col(k))",
                array: xv,
                pattern: Pattern::Indirect {
                    index: cols,
                    ibase: 0,
                    istride: 1,
                },
                mode: Mode::Read,
                bytes: 8,
                hoistable: true,
            },
            StreamRef {
                name: "y(row(k))",
                array: y,
                pattern: Pattern::Indirect {
                    index: rows,
                    ibase: 0,
                    istride: 1,
                },
                mode: Mode::Modify,
                bytes: 8,
                hoistable: false,
            },
        ],
        compute: 6.0,
        hoistable_compute: 2.0,
        hoist_result_bytes: 8,
    };
    let mut arena = Arena::new(&space);
    for id in [a, xv] {
        fill_f64(&mut arena, &space, id, &mut rng);
    }
    arena.install_indices(&space, &index);
    finish("seq_spmv", space, index, spec, arena)
}

/// Build the whole suite at a common scale (element counts ~`n`).
pub fn suite(n: u64, seed: u64) -> Vec<Kernel> {
    vec![
        triangular_solve(n, 4, seed),
        pointer_chase(n, 8, seed ^ 1),
        iir_recurrence(n, seed ^ 2),
        fused_stream(n, seed ^ 5),
        histogram(n, (n / 4).max(2), seed ^ 3),
        seq_spmv(n * 4, n, n, seed ^ 4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_builds_and_validates() {
        let ks = suite(4096, 9);
        assert_eq!(ks.len(), 6);
        for k in &ks {
            k.workload.validate();
            assert_eq!(k.workload.loops.len(), 1);
            assert_eq!(k.arena.len() as u64, k.workload.space.extent());
        }
    }

    #[test]
    fn analyzer_admits_every_kernel() {
        // All six kernels — including the carried-read ones — carry
        // analyzer verdicts the real-thread runtime can honor.
        for k in suite(1024, 5) {
            let report = k.report();
            assert!(k.rt_safe(), "{}: analyzer rejected the kernel", k.name);
            assert!(report.rt_ok());
            let lag = report.loops[0].helper_lag();
            let carried = matches!(
                k.name,
                "triangular_solve" | "iir_recurrence" | "fused_stream"
            );
            assert_eq!(
                lag.is_some(),
                carried,
                "{}: helper lag {lag:?} disagrees with loop structure",
                k.name
            );
        }
    }

    #[test]
    fn tri_solve_references_only_earlier_unknowns() {
        let k = triangular_solve(512, 4, 3);
        let cols = k
            .workload
            .space
            .iter()
            .find(|(_, d)| d.name == "col")
            .unwrap()
            .0;
        for i in 1..512u64 {
            let j = k.workload.index.get(cols, i * 4) as u64;
            assert!(j < i, "row {i} references x[{j}] >= i");
        }
    }

    #[test]
    fn pointer_chase_visits_every_node_once() {
        let k = pointer_chase(1024, 8, 3);
        let chain = k
            .workload
            .space
            .iter()
            .find(|(_, d)| d.name == "chain")
            .unwrap()
            .0;
        let mut seen = vec![false; 1024];
        for i in 0..1024u64 {
            let v = k.workload.index.get(chain, i) as usize;
            assert!(!seen[v]);
            seen[v] = true;
        }
    }

    #[test]
    fn histogram_keys_in_range() {
        let k = histogram(2048, 64, 3);
        let key = k
            .workload
            .space
            .iter()
            .find(|(_, d)| d.name == "key")
            .unwrap()
            .0;
        for i in 0..2048u64 {
            assert!((k.workload.index.get(key, i) as u64) < 64);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = histogram(1024, 32, 7);
        let b = histogram(1024, 32, 7);
        assert_eq!(a.arena.checksum(), b.arena.checksum());
        let c = histogram(1024, 32, 8);
        assert_ne!(a.arena.checksum(), c.arena.checksum());
    }
}

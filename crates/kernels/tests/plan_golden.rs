//! Golden transformation plans for the kernel suite: the full mode
//! matrix (cascade × helper-lag × journalable × fissionable ×
//! DOACROSS-lag × parallel × speculation-ready) plus the fission
//! partition shape, pinned per kernel so a regression in any analyzer
//! layer — footprints, lag computation, dependence edges, SCC
//! condensation, or mode threading — fails loudly in one table.
//!
//! Every pinned plan is also validated bitwise against the dynamic
//! replay oracle: the fissioned order, every per-sub-loop schedule, and
//! the whole-loop claims must reproduce the sequential model state
//! exactly.

use cascade_analyze::oracle::check_plan;
use cascade_analyze::plan::{plan_workload, Schedule};
use cascade_trace::DiagCode;

/// One row of the pinned mode matrix:
/// (kernel, cascade, helper lag, journalable, [(sub-loop statements,
/// schedule)], whole-loop min carried lag, parallel, speculation-ready,
/// plan diag codes).
type GoldenRow = (
    &'static str,
    bool,
    Option<u64>,
    bool,
    &'static [(&'static [usize], Schedule)],
    Option<u64>,
    bool,
    bool,
    &'static [DiagCode],
);

const GOLDEN: &[GoldenRow] = &[
    (
        "triangular_solve",
        true,
        Some(1),
        true,
        &[(&[0], Schedule::Sequential)],
        Some(1),
        false,
        true,
        &[],
    ),
    (
        "pointer_chase",
        true,
        None,
        true,
        &[(&[0], Schedule::Parallel)],
        None,
        true,
        true,
        &[DiagCode::PlanParallel],
    ),
    (
        "iir_recurrence",
        true,
        Some(1),
        true,
        &[(&[0], Schedule::Sequential)],
        Some(1),
        false,
        true,
        &[],
    ),
    (
        "fused_stream",
        true,
        Some(1),
        true,
        // The recurrence residue must run first; the independent store
        // fissions off as a DOALL sub-loop.
        &[(&[0], Schedule::Sequential), (&[1], Schedule::Parallel)],
        Some(1),
        false,
        true,
        &[DiagCode::FissionLegal, DiagCode::PlanParallel],
    ),
    (
        "histogram",
        true,
        None,
        true,
        &[(&[0], Schedule::Sequential)],
        Some(1),
        false,
        true,
        &[],
    ),
    (
        "seq_spmv",
        true,
        None,
        true,
        &[(&[0], Schedule::Sequential)],
        Some(1),
        false,
        true,
        &[],
    ),
];

#[test]
fn kernel_mode_matrix_matches_golden() {
    let kernels = cascade_kernels::suite(4096, 42);
    assert_eq!(kernels.len(), GOLDEN.len());
    for (k, (name, cascade, hlag, journ, partition, dlag, par, spec, codes)) in
        kernels.iter().zip(GOLDEN)
    {
        assert_eq!(k.name, *name);
        let plans = plan_workload(&k.workload);
        let p = &plans[0];
        assert!(!p.opaque, "{name}: plan must not be opaque");
        assert_eq!(p.modes.cascade, *cascade, "{name}: cascade mode drifted");
        assert_eq!(p.modes.helper_lag, *hlag, "{name}: helper lag drifted");
        assert_eq!(
            p.modes.journalable, *journ,
            "{name}: journalability drifted"
        );
        assert_eq!(
            p.modes.fissionable,
            partition.len() >= 2,
            "{name}: fissionability drifted"
        );
        assert_eq!(
            p.modes.sub_loops,
            partition.len(),
            "{name}: sub-loop count drifted"
        );
        assert_eq!(
            p.modes.doacross_lag, *dlag,
            "{name}: whole-loop carried lag drifted"
        );
        assert_eq!(p.modes.parallel, *par, "{name}: DOALL verdict drifted");
        assert_eq!(
            p.modes.speculation_ready, *spec,
            "{name}: speculation readiness drifted"
        );
        assert_eq!(
            p.partition.len(),
            partition.len(),
            "{name}: partition shape drifted"
        );
        for (sub, (stmts, sched)) in p.partition.iter().zip(*partition) {
            assert_eq!(&sub.statements, stmts, "{name}: sub-loop members drifted");
            assert_eq!(sub.schedule, *sched, "{name}: schedule drifted");
        }
        assert_eq!(p.codes(), *codes, "{name}: plan diagnostics drifted");
    }
}

#[test]
fn every_kernel_plan_validates_against_the_replay_oracle() {
    for k in cascade_kernels::suite(4096, 42) {
        let w = &k.workload;
        let plans = plan_workload(w);
        for (spec, plan) in w.loops.iter().zip(&plans) {
            let v = check_plan(w, spec, plan, 0x5eed);
            assert!(
                v.is_empty(),
                "{}: plan contradicted by replay: {:?}",
                k.name,
                v
            );
        }
    }
}

#[test]
fn fused_stream_rejects_the_swapped_partition() {
    // The one fissionable kernel in the zoo: running the consumer
    // sub-loop before the recurrence must be rejected statically (AN013)
    // and caught dynamically by the replay model.
    let k = cascade_kernels::fused_stream(1024, 11);
    let w = &k.workload;
    let mut plan = plan_workload(w).remove(0);
    assert!(plan.modes.fissionable);
    let err = plan
        .check_partition(&[
            plan.partition[1].statements.clone(),
            plan.partition[0].statements.clone(),
        ])
        .expect_err("swapped partition must be rejected");
    assert!(err.iter().all(|d| d.code == DiagCode::IllegalPartition));
    plan.partition.swap(0, 1);
    let v = check_plan(w, &w.loops[0], &plan, 3);
    assert!(
        v.iter()
            .any(|v| v.detail.contains("fissioned sub-loop order")),
        "replay must catch the illegal order: {v:?}"
    );
}

//! Golden analyzer verdicts for the kernel suite: the exact lattice class
//! (and lag) of every operand, pinned so a change to the dependence
//! analysis that silently reclassifies a kernel fails loudly here.

use cascade_analyze::Verdict;
use cascade_kernels::suite;
use cascade_trace::DiagCode;

/// (kernel, helper lag, [(operand, verdict class)], [diag codes]).
/// Verdict classes are the stable strings from [`Verdict::class`].
type GoldenRow = (
    &'static str,
    Option<u64>,
    &'static [(&'static str, &'static str)],
    &'static [DiagCode],
);

const GOLDEN: &[GoldenRow] = &[
    (
        "triangular_solve",
        Some(1),
        &[
            ("L(i,*)", "packable"),
            ("b(i)", "packable"),
            ("d(i)", "packable"),
            ("x(col(i,0))", "horizon_safe"),
            ("x(i)", "prefetchable"),
        ],
        &[DiagCode::CarriedRead],
    ),
    (
        "pointer_chase",
        None,
        &[("nodes(chain(i))", "packable")],
        &[],
    ),
    (
        "iir_recurrence",
        Some(1),
        &[
            ("x(i)", "packable"),
            ("y(i-1)", "horizon_safe"),
            ("y(i)", "prefetchable"),
        ],
        &[DiagCode::CarriedRead],
    ),
    (
        "fused_stream",
        Some(1),
        &[
            ("a(i)", "packable"),
            ("b(i)", "horizon_safe"),
            ("b(i+1)", "prefetchable"),
            ("c(i)", "prefetchable"),
        ],
        &[DiagCode::CarriedRead],
    ),
    (
        "histogram",
        None,
        &[("w(i)", "packable"), ("hist(key(i))", "prefetchable")],
        &[],
    ),
    (
        "seq_spmv",
        None,
        &[
            ("A(k)", "packable"),
            ("x(col(k))", "packable"),
            ("y(row(k))", "prefetchable"),
        ],
        &[],
    ),
];

#[test]
fn kernel_verdicts_match_golden() {
    let kernels = suite(4096, 42);
    assert_eq!(kernels.len(), GOLDEN.len());
    for (k, (name, lag, refs, codes)) in kernels.iter().zip(GOLDEN) {
        assert_eq!(k.name, *name);
        let rep = k.report();
        assert!(rep.rt_ok(), "{name}: analyzer must admit the kernel");
        let l = &rep.loops[0];
        assert_eq!(l.helper_lag(), *lag, "{name}: helper lag drifted");
        assert_eq!(l.refs.len(), refs.len(), "{name}: operand count drifted");
        for (r, (rname, class)) in l.refs.iter().zip(*refs) {
            assert_eq!(r.name, *rname, "{name}: operand order drifted");
            assert_eq!(
                r.verdict.class(),
                *class,
                "{name}: {rname} verdict drifted to {}",
                r.verdict
            );
        }
        assert_eq!(l.codes(), *codes, "{name}: diagnostic codes drifted");
    }
}

#[test]
fn carried_kernels_pin_their_exact_lag() {
    // The carried-read kernels all have a distance-1 flow dependence —
    // pin the full verdict (class AND lag), not just the class.
    for k in suite(1024, 7) {
        let rep = k.report();
        let l = &rep.loops[0];
        match k.name {
            "triangular_solve" => assert_eq!(
                l.find_ref("x(col(i,0))").unwrap().verdict,
                Verdict::HorizonSafe { lag: 1 }
            ),
            "iir_recurrence" => assert_eq!(
                l.find_ref("y(i-1)").unwrap().verdict,
                Verdict::HorizonSafe { lag: 1 }
            ),
            "fused_stream" => assert_eq!(
                l.find_ref("b(i)").unwrap().verdict,
                Verdict::HorizonSafe { lag: 1 }
            ),
            _ => assert_eq!(l.helper_lag(), None, "{}: unexpected lag", k.name),
        }
    }
}

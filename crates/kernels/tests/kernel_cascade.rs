//! The kernel suite through the full system: simulator speedups per loop
//! class, and real-thread bitwise equivalence for every kernel — including
//! the carried-read pair the analyzer proves horizon-safe.

use std::time::Duration;

use cascade_core::{run_cascaded, run_sequential, CascadeConfig, HelperPolicy};
use cascade_kernels::{histogram, pointer_chase, seq_spmv, suite, triangular_solve};
use cascade_mem::machines::pentium_pro;
use cascade_rt::{
    try_run_cascaded, FaultEvent, FaultKind, FaultPlan, FaultyKernel, RtPolicy, RunnerConfig,
    SpecProgram, Tolerance,
};

#[test]
fn every_kernel_simulates_under_every_policy() {
    let m = pentium_pro();
    for k in suite(8192, 3) {
        let base = run_sequential(&m, &k.workload, 1, true);
        for policy in [
            HelperPolicy::None,
            HelperPolicy::Prefetch,
            HelperPolicy::Restructure { hoist: false },
            HelperPolicy::Restructure { hoist: true },
        ] {
            let cfg = CascadeConfig {
                nprocs: 4,
                policy,
                calls: 1,
                ..CascadeConfig::default()
            };
            let r = run_cascaded(&m, &k.workload, &cfg);
            let s = r.overall_speedup_vs(&base);
            assert!(
                s > 0.2 && s < 20.0,
                "{} under {:?}: absurd speedup {s}",
                k.name,
                policy
            );
        }
    }
}

#[test]
fn memory_bound_kernels_gain_most() {
    // The pointer chase (no locality at all) must gain more from
    // restructuring than the histogram over a small bucket array (whose
    // working set is cache-resident).
    let m = pentium_pro();
    let chase = pointer_chase(1 << 18, 8, 3);
    let hist = histogram(1 << 18, 512, 3); // 4KB of buckets: cache-resident
    let cfg = CascadeConfig {
        nprocs: 4,
        policy: HelperPolicy::Restructure { hoist: true },
        calls: 1,
        ..CascadeConfig::default()
    };
    let s_chase = run_cascaded(&m, &chase.workload, &cfg).overall_speedup_vs(&run_sequential(
        &m,
        &chase.workload,
        1,
        true,
    ));
    let s_hist = run_cascaded(&m, &hist.workload, &cfg).overall_speedup_vs(&run_sequential(
        &m,
        &hist.workload,
        1,
        true,
    ));
    assert!(
        s_chase > s_hist,
        "chase ({s_chase:.2}) must out-gain cache-resident histogram ({s_hist:.2})"
    );
    assert!(
        s_chase > 1.5,
        "a random chase is highly memory bound: {s_chase:.2}"
    );
}

#[test]
fn every_kernel_cascades_bitwise_on_threads() {
    for k in suite(4096, 11) {
        let name = k.name;
        assert!(k.rt_safe(), "{name}: analyzer must admit every kernel");
        let expected = {
            let mut prog = SpecProgram::new(k.workload.clone(), k.arena.clone()).unwrap();
            let kern = prog.kernel(0);
            // SAFETY: single-threaded baseline.
            unsafe {
                cascade_rt::RealKernel::execute(&kern, 0..cascade_rt::RealKernel::iters(&kern))
            };
            prog.checksum()
        };
        let mut prog = SpecProgram::new(k.workload, k.arena).unwrap();
        let kern = prog.kernel(0);
        cascade_rt::run_cascaded(
            &kern,
            &RunnerConfig {
                nthreads: 3,
                iters_per_chunk: 119,
                policy: RtPolicy::Restructure,
                poll_batch: 8,
            },
        );
        assert_eq!(prog.checksum(), expected, "{name} diverged under cascading");
    }
}

#[test]
fn tri_solve_survives_injected_panic_bitwise() {
    // Chaos smoke for the newly rt-enabled carried-read kernel: a worker
    // panic mid-run must be absorbed by the retry ladder (injected faults
    // are fail-stop) with a bitwise-identical result — the helper horizon
    // keeps holding even while chunks are re-executed on survivors.
    let build = || triangular_solve(4096, 4, 17);
    let expected = {
        let k = build();
        let mut prog = SpecProgram::new(k.workload, k.arena).unwrap();
        let kern = prog.kernel(0);
        // SAFETY: single-threaded baseline.
        unsafe { cascade_rt::RealKernel::execute(&kern, 0..cascade_rt::RealKernel::iters(&kern)) };
        prog.checksum()
    };
    let k = build();
    let mut prog = SpecProgram::new(k.workload, k.arena).unwrap();
    let cfg = RunnerConfig {
        nthreads: 3,
        iters_per_chunk: 113,
        policy: RtPolicy::Restructure,
        poll_batch: 8,
    };
    let faulty = FaultyKernel::new(
        prog.kernel(0),
        FaultPlan::new(cfg.iters_per_chunk).inject(5, FaultKind::Panic),
    );
    try_run_cascaded(&faulty, &cfg, &Tolerance::retrying(Duration::from_secs(5)))
        .expect("retry ladder must absorb a fail-stop panic");
    assert_eq!(faulty.fired(), vec![5], "the planned fault must have fired");
    drop(faulty);
    assert_eq!(
        prog.checksum(),
        expected,
        "tri-solve diverged under fault + retry"
    );
}

#[test]
fn tri_solve_survives_mid_mutation_panic_bitwise() {
    // Acceptance for transactional chunks: tri-solve makes *no* fail-stop
    // promise, and this fault panics after 40 iterations of the chunk
    // already mutated x — before journaling this was unconditionally
    // fatal. The analyzer bounds the write-set, the worker rolls the
    // chunk back to its pre-chunk bytes, and both the retry ladder and
    // the salvage pass must now finish bitwise-identical to sequential.
    let build = || triangular_solve(4096, 4, 17);
    let expected = {
        let k = build();
        let mut prog = SpecProgram::new(k.workload, k.arena).unwrap();
        let kern = prog.kernel(0);
        // SAFETY: single-threaded baseline.
        unsafe { cascade_rt::RealKernel::execute(&kern, 0..cascade_rt::RealKernel::iters(&kern)) };
        prog.checksum()
    };
    for (label, tol, want_degraded) in [
        ("retry", Tolerance::retrying(Duration::from_secs(5)), false),
        (
            "salvage",
            Tolerance::resilient(Duration::from_secs(5)),
            true,
        ),
    ] {
        let k = build();
        let mut prog = SpecProgram::new(k.workload, k.arena).unwrap();
        let cfg = RunnerConfig {
            nthreads: 3,
            iters_per_chunk: 113,
            policy: RtPolicy::Restructure,
            poll_batch: 8,
        };
        let faulty = FaultyKernel::new(
            prog.kernel(0),
            FaultPlan::new(cfg.iters_per_chunk)
                .inject(5, FaultKind::PanicMidMutation { after_iters: 40 }),
        );
        let stats = try_run_cascaded(&faulty, &cfg, &tol)
            .unwrap_or_else(|e| panic!("{label}: journaled recovery must absorb the fault: {e}"));
        assert_eq!(stats.degraded, want_degraded, "{label}");
        assert!(
            stats
                .faults
                .iter()
                .any(|f| matches!(f, FaultEvent::ChunkRolledBack { chunk: 5, .. })),
            "{label}: missing rollback event: {:?}",
            stats.faults
        );
        assert_eq!(faulty.fired(), vec![5], "{label}: planned fault must fire");
        drop(faulty);
        assert_eq!(
            prog.checksum(),
            expected,
            "tri-solve diverged under mid-mutation fault + {label}"
        );
    }
}

#[test]
fn spmv_scatter_order_is_preserved() {
    // The scatter-accumulate makes seq_spmv order-sensitive; cascading
    // across different chunk sizes must all give the sequential answer.
    let build = || seq_spmv(8192, 2048, 2048, 5);
    let expected = {
        let k = build();
        let mut prog = SpecProgram::new(k.workload, k.arena).unwrap();
        let kern = prog.kernel(0);
        // SAFETY: single-threaded baseline.
        unsafe { cascade_rt::RealKernel::execute(&kern, 0..cascade_rt::RealKernel::iters(&kern)) };
        prog.checksum()
    };
    for chunk in [64u64, 777, 5000] {
        let k = build();
        let mut prog = SpecProgram::new(k.workload, k.arena).unwrap();
        let kern = prog.kernel(0);
        cascade_rt::run_cascaded(
            &kern,
            &RunnerConfig {
                nthreads: 2,
                iters_per_chunk: chunk,
                policy: RtPolicy::Prefetch,
                poll_batch: 16,
            },
        );
        assert_eq!(prog.checksum(), expected, "chunk {chunk} diverged");
    }
}

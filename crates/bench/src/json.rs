//! A minimal JSON reader for the bench harness.
//!
//! `bench_diff` has to parse the `BENCH_runtime.json` snapshots this repo
//! emits, and the offline build vendors no serde — so this is a small
//! recursive-descent parser over the full JSON grammar. Object key order
//! is preserved (the snapshots are written with fixed field order and the
//! diff reports in that order).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64 — the snapshots stay below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse one JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|b| b as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_snapshot_shape() {
        let doc = r#"{
            "schema": "cascade-bench-v1",
            "exact": {"rt_cascade.chunks": 16, "neg": -2},
            "timing_ns": {"token_pass.per_transfer": 123.5},
            "flags": [true, false, null],
            "note": "a \"quoted\" value\n"
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("cascade-bench-v1"));
        let exact = v.get("exact").unwrap();
        assert_eq!(exact.get("rt_cascade.chunks").unwrap().as_f64(), Some(16.0));
        assert_eq!(exact.get("neg").unwrap().as_f64(), Some(-2.0));
        assert_eq!(
            v.get("timing_ns")
                .unwrap()
                .get("token_pass.per_transfer")
                .unwrap()
                .as_f64(),
            Some(123.5)
        );
        assert_eq!(
            v.get("flags").unwrap(),
            &Json::Arr(vec![Json::Bool(true), Json::Bool(false), Json::Null])
        );
        assert_eq!(
            v.get("note").unwrap().as_str(),
            Some("a \"quoted\" value\n")
        );
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"b": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["b", "a"]);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn scientific_notation_round_trips() {
        assert_eq!(parse("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert_eq!(parse("-0.25").unwrap().as_f64(), Some(-0.25));
    }
}

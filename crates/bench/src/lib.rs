//! # cascade-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5 for the
//! index). Every binary prints an aligned text table with the same rows or
//! series the paper plots, plus the paper's reference values where the
//! paper states them, so paper-vs-measured comparison is mechanical.
//!
//! Shared here: workload construction, the standard configuration grid,
//! and table formatting.

#![warn(missing_docs)]

pub mod json;
pub mod plot;

use cascade_core::{run_cascaded, run_sequential, CascadeConfig, HelperPolicy, RunReport};
use cascade_mem::MachineConfig;
use cascade_trace::Workload;
use cascade_wave5::{Parmvr, ParmvrParams};

/// Default workload scale for single-configuration experiments (1.0 = the
/// paper's enlarged problem).
pub const FULL_SCALE: f64 = 1.0;

/// Default workload scale for parameter sweeps (figs 2 and 6), trading a
/// factor of two in footprint for sweep runtime; relative shapes are
/// preserved.
pub const SWEEP_SCALE: f64 = 0.5;

/// Seed used by every experiment (reproducibility).
pub const SEED: u64 = 0x1999_0412;

/// The paper's headline chunk size.
pub const CHUNK_64K: u64 = 64 * 1024;

/// Resolve the workload scale: first CLI argument, else `CASCADE_SCALE`
/// env var, else the given default.
pub fn scale_from_args(default: f64) -> f64 {
    if let Some(s) = std::env::args().nth(1).and_then(|s| s.parse::<f64>().ok()) {
        return s;
    }
    if let Ok(v) = std::env::var("CASCADE_SCALE") {
        if let Ok(s) = v.parse::<f64>() {
            return s;
        }
    }
    default
}

/// Build the PARMVR workload at `scale`.
pub fn parmvr(scale: f64) -> Parmvr {
    Parmvr::build(ParmvrParams { scale, seed: SEED })
}

/// Standard cascade configuration: `calls = 2` with a flush between calls
/// (first call warms structural state, second is measured — the paper
/// measures call 12 of ~5000, i.e. a steady-state call).
pub fn cascade_cfg(nprocs: usize, chunk_bytes: u64, policy: HelperPolicy) -> CascadeConfig {
    CascadeConfig {
        nprocs,
        chunk_bytes,
        policy,
        jump_out: true,
        calls: 2,
        flush_between_calls: true,
    }
}

/// Run the sequential baseline with the standard call discipline.
pub fn baseline(machine: &MachineConfig, workload: &Workload) -> RunReport {
    run_sequential(machine, workload, 2, true)
}

/// Run a cascaded configuration with the standard call discipline.
pub fn cascaded(
    machine: &MachineConfig,
    workload: &Workload,
    nprocs: usize,
    chunk_bytes: u64,
    policy: HelperPolicy,
) -> RunReport {
    run_cascaded(machine, workload, &cascade_cfg(nprocs, chunk_bytes, policy))
}

/// The two helper policies the paper's figures compare.
pub fn paper_policies() -> [HelperPolicy; 2] {
    [
        HelperPolicy::Prefetch,
        HelperPolicy::Restructure { hoist: true },
    ]
}

/// Print a title line followed by a separator of matching width.
pub fn header(title: &str) {
    println!("{title}");
    println!("{}", "=".repeat(title.len().min(100)));
}

/// Format a row of right-aligned fixed-width cells.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Cycles in millions with two decimals (the unit of Figure 3's axes).
pub fn mcycles(c: f64) -> String {
    format!("{:.2}", c / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_mem::machines::pentium_pro;

    #[test]
    fn parmvr_builder_is_reusable() {
        let p = parmvr(0.01);
        assert_eq!(p.workload.loops.len(), 15);
    }

    #[test]
    fn baseline_and_cascade_share_loop_structure() {
        let p = parmvr(0.01);
        let m = pentium_pro();
        let b = baseline(&m, &p.workload);
        let c = cascaded(&m, &p.workload, 2, CHUNK_64K, HelperPolicy::Prefetch);
        assert_eq!(b.loops.len(), c.loops.len());
        assert!(c.overall_speedup_vs(&b) > 0.0);
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn scale_default_is_positive() {
        assert!(scale_from_args(0.25) > 0.0);
    }
}

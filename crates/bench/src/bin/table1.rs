//! Table 1: memory characteristics of the two simulated machines
//! (Pentium Pro per Intel refs 10-11 of the paper; R10000 per MIPS ref 13).

use cascade_bench::header;
use cascade_mem::machines::{pentium_pro, r10000};
use cascade_mem::MachineConfig;

fn print_machine(m: &MachineConfig) {
    println!("{}", m.name);
    println!(
        "  L1      {:>4} cycles  {:>7} KB  {:>2}-way  {:>3}-byte lines",
        m.l1.latency,
        m.l1.size / 1024,
        m.l1.assoc,
        m.l1.line
    );
    println!(
        "  L2      {:>4} cycles  {:>7} KB  {:>2}-way  {:>3}-byte lines",
        m.l2.latency,
        m.l2.size / 1024,
        m.l2.assoc,
        m.l2.line
    );
    println!(
        "  Memory  {:>4} cycles (dirty-remote {})",
        m.mem_latency, m.dirty_remote_latency
    );
    println!(
        "  Transfer of control: {} cycles per chunk",
        m.transfer_cost
    );
    println!(
        "  Overlap model: affine {:.1}x, indirect {:.1}x, conflict {:.1}x, helper {:.1}x{}",
        m.affine_overlap,
        m.indirect_overlap,
        m.conflict_overlap,
        m.helper_overlap,
        if m.compiler_prefetch {
            "  (compiler software prefetch)"
        } else {
            ""
        }
    );
}

fn main() {
    header("Table 1: Pentium Pro and R10000 memory characteristics");
    print_machine(&pentium_pro());
    println!();
    print_machine(&r10000());
    println!();
    println!("Paper reference: PPro L1 3cy/8KB/2-way/32B, L2 7cy/512KB/4-way/32B, mem 58cy;");
    println!(
        "                 R10000 L1 3cy/32KB/2-way/32B, L2 6cy/2MB/2-way/128B, mem 100-200cy;"
    );
    println!("                 transfers ~120cy (PPro) / ~500cy (R10000), paper footnote 2.");
}

//! Extra experiment B (§3.3): the jump-out-of-helper modification.
//!
//! The paper: "performance is improved by causing a processor to jump out
//! of a helper phase, if necessary, as soon as it is signaled to begin
//! execution. The results presented ... include this modification."
//!
//! In our simulator, stalling the token until the helper finishes is
//! never *much* worse and sometimes slightly better, because a helper
//! line fetch is modelled marginally cheaper than the demand re-fetch it
//! saves; the real machines' advantage for jump-out (flag-poll overhead,
//! bus contention between the stalled helper and nothing else to overlap
//! with) is not modelled. This binary quantifies that divergence — see
//! EXPERIMENTS.md. The structural effect is reproduced: jump-out trades
//! helper coverage for earlier execution starts, and the two variants
//! converge as processor count grows.

use cascade_bench::{
    baseline, cascade_cfg, header, parmvr, row, scale_from_args, CHUNK_64K, SWEEP_SCALE,
};
use cascade_core::{run_cascaded, HelperPolicy};
use cascade_mem::machines::{pentium_pro, r10000};

fn main() {
    let scale = scale_from_args(SWEEP_SCALE);
    header(&format!(
        "Extra B: jump-out-of-helper ablation (restructured, 64KB chunks, scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let widths = [11usize, 7, 12, 12, 10, 10];
    println!(
        "{}",
        row(
            &[
                "machine".into(),
                "procs".into(),
                "jump-out".into(),
                "stall".into(),
                "cov(jump)".into(),
                "cov(stall)".into()
            ],
            &widths
        )
    );
    for (machine, procs) in [(pentium_pro(), vec![2usize, 4]), (r10000(), vec![2, 4, 8])] {
        let base = baseline(&machine, w);
        for np in procs {
            let mut cfg = cascade_cfg(np, CHUNK_64K, HelperPolicy::Restructure { hoist: true });
            let jump = run_cascaded(&machine, w, &cfg);
            cfg.jump_out = false;
            let stall = run_cascaded(&machine, w, &cfg);
            let cov = |r: &cascade_core::RunReport| {
                let h: u64 = r.loops.iter().map(|l| l.helper_iters).sum();
                let t: u64 = r.loops.iter().map(|l| l.iters).sum();
                h as f64 / t as f64
            };
            println!(
                "{}",
                row(
                    &[
                        machine.name.to_string(),
                        np.to_string(),
                        format!("{:.3}", jump.overall_speedup_vs(&base)),
                        format!("{:.3}", stall.overall_speedup_vs(&base)),
                        format!("{:.2}", cov(&jump)),
                        format!("{:.2}", cov(&stall)),
                    ],
                    &widths
                )
            );
        }
    }
    println!("\nPaper: jump-out improved measured performance on the 4- and 8-processor testbeds.");
    println!("Model: the two converge with processor count; stall retains full helper coverage.");
}

//! Extra experiment E (model extension, not in the paper): the sequential
//! buffer's *page-locality* benefit.
//!
//! The paper's §2.1 lists the cache-side benefits of restructuring; on a
//! machine whose TLB misses are expensive (the R10000 refills its TLB in
//! software) there is a fourth benefit the 1999 counters could not
//! isolate: the execution phase of a restructured gather touches a dense
//! buffer (one page per 4KB of operands) instead of a scattered gather
//! range (up to one page *per iteration*). This binary enables the TLB
//! model — off by default so every paper figure is unaffected — and
//! measures it.
//!
//! Measured outcome: restructuring moves the *read-gather* page walks to
//! the helper phase (its execution phase reads a dense buffer), while
//! scatter writes keep their page walks in the execution phase on every
//! policy — so execution-phase TLB misses drop by the read-gather share
//! (~25% in our loop mix) rather than collapsing outright, and end-to-end
//! speedups move only slightly.

use cascade_bench::{
    baseline, cascaded, header, parmvr, row, scale_from_args, CHUNK_64K, SWEEP_SCALE,
};
use cascade_core::HelperPolicy;
use cascade_mem::machines::{pentium_pro, r10000};
use cascade_mem::TlbConfig;

fn main() {
    let scale = scale_from_args(SWEEP_SCALE);
    header(&format!(
        "Extra E: restructuring with a modelled TLB (4 procs, 64KB chunks, scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let widths = [11usize, 10, 12, 14, 15, 15];
    println!(
        "{}",
        row(
            &[
                "machine".into(),
                "TLB".into(),
                "pre-spd".into(),
                "rst-spd".into(),
                "exec-TLBmiss pre".into(),
                "exec-TLBmiss rst".into()
            ],
            &widths
        )
    );
    for (base_machine, tlb) in [
        (pentium_pro(), TlbConfig::pentium_pro()),
        (r10000(), TlbConfig::r10000()),
    ] {
        for enable in [false, true] {
            let machine = if enable {
                base_machine.clone().with_tlb(tlb)
            } else {
                base_machine.clone()
            };
            let b = baseline(&machine, w);
            let pre = cascaded(&machine, w, 4, CHUNK_64K, HelperPolicy::Prefetch);
            let rst = cascaded(
                &machine,
                w,
                4,
                CHUNK_64K,
                HelperPolicy::Restructure { hoist: true },
            );
            let sp = pre.overall_speedup_vs(&b);
            let sr = rst.overall_speedup_vs(&b);
            let tlb_pre: u64 = pre.loops.iter().map(|l| l.exec.tlb_misses).sum();
            let tlb_rst: u64 = rst.loops.iter().map(|l| l.exec.tlb_misses).sum();
            println!(
                "{}",
                row(
                    &[
                        machine.name.to_string(),
                        if enable {
                            format!("{}cy", tlb.miss_cycles)
                        } else {
                            "off".into()
                        },
                        format!("{sp:.3}"),
                        format!("{sr:.3}"),
                        tlb_pre.to_string(),
                        tlb_rst.to_string(),
                    ],
                    &widths
                )
            );
        }
    }
    println!("\nReading: restructuring moves read-gather page walks into the helper phase");
    println!("(its execution phase reads a dense buffer); scatter-write page walks remain");
    println!("on every policy, so exec-phase TLB misses drop by the read-gather share.");
    println!("End-to-end speedups move only slightly: helpers absorb translation misses");
    println!("off the critical path, exactly as they absorb cache misses.");
}

//! Extra experiment I (model extension): does cascaded execution still
//! pay on a 2020s machine?
//!
//! The paper predicted growing benefit as processors outpace memory
//! (§3.4). A modern core complicates that picture: memory latency has
//! indeed grown (~300 cycles), but deep out-of-order execution, many
//! outstanding misses and aggressive stream prefetchers hide far more of
//! it, and an 8MB L3 absorbs working sets that thrashed 1997's L2s. This
//! experiment runs the same PARMVR and synthetic loops on the `modern`
//! preset (3 cache levels, 64B lines) next to the Table-1 machines.

use cascade_bench::{
    baseline, cascaded, header, parmvr, row, scale_from_args, CHUNK_64K, SWEEP_SCALE,
};
use cascade_core::{run_sequential, run_unbounded, HelperPolicy, UnboundedConfig};
use cascade_mem::machines::{modern, pentium_pro, r10000};
use cascade_synth::{Synth, Variant};

fn main() {
    let scale = scale_from_args(SWEEP_SCALE);
    header(&format!(
        "Extra I: cascaded execution on a modern (3-level, 64B-line) machine (scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let widths = [11usize, 7, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "machine".into(),
                "procs".into(),
                "prefetched".into(),
                "restructured".into(),
                "exec L3 miss".into()
            ],
            &widths
        )
    );
    for (machine, procs) in [
        (pentium_pro(), 4usize),
        (r10000(), 8),
        (modern(), 8),
        (modern(), 16),
    ] {
        let base = baseline(&machine, w);
        let pre = cascaded(&machine, w, procs, CHUNK_64K, HelperPolicy::Prefetch);
        let rst = cascaded(
            &machine,
            w,
            procs,
            CHUNK_64K,
            HelperPolicy::Restructure { hoist: true },
        );
        println!(
            "{}",
            row(
                &[
                    machine.name.to_string(),
                    procs.to_string(),
                    format!("{:.2}", pre.overall_speedup_vs(&base)),
                    format!("{:.2}", rst.overall_speedup_vs(&base)),
                    rst.loops
                        .iter()
                        .map(|l| l.exec.l3_misses)
                        .sum::<u64>()
                        .to_string(),
                ],
                &widths
            )
        );
    }

    println!("\nSynthetic sparse loop, unbounded model (the §3.4 projection, on real 2020s");
    println!("latencies instead of extrapolation):");
    let n = (((4u64 << 20) as f64 * scale) as u64).max(4096) / 8 * 8;
    for machine in [pentium_pro(), modern()] {
        let synth = Synth::build(n, Variant::Sparse, cascade_bench::SEED);
        let base = run_sequential(&machine, &synth.workload, 1, true);
        let r = run_unbounded(
            &machine,
            &synth.workload,
            &UnboundedConfig {
                chunk_bytes: 16 * 1024,
                policy: HelperPolicy::Restructure { hoist: true },
                calls: 1,
                flush_between_calls: true,
            },
        );
        println!(
            "  {:11} sparse restructured: {:.1}x",
            machine.name,
            r.overall_speedup_vs(&base)
        );
    }
    println!("\nReading: the benefit survives on modern hardware but is smaller than the");
    println!("paper's future projection assumed — latency grew as predicted, yet so did");
    println!("the hardware's own ability to hide it (prefetchers, MSHRs, giant L3s). The");
    println!("technique's niche remains what §4 said: memory-bound loops the compiler and");
    println!("prefetchers cannot help — gathers, scatters, conflict-prone strides.");
}

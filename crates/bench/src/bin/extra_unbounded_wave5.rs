//! Extra experiment A (§3.3): unbounded-processor simulation of the wave5
//! loops. The paper: "In simulations of an unbounded number of processors,
//! some loops were shown to have potential speedups as high as 30."

use cascade_bench::{baseline, header, parmvr, row, scale_from_args, CHUNK_64K, FULL_SCALE};
use cascade_core::{run_unbounded, HelperPolicy, UnboundedConfig};
use cascade_mem::machines::{pentium_pro, r10000};

#[allow(clippy::needless_range_loop)] // parallel indexing into four result columns
fn main() {
    let scale = scale_from_args(FULL_SCALE);
    header(&format!(
        "Extra A: unbounded-processor speedups of the PARMVR loops (64KB chunks, scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let widths = [44usize, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "loop".into(),
                "PPro pre".into(),
                "PPro rst".into(),
                "R10k pre".into(),
                "R10k rst".into()
            ],
            &widths
        )
    );
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for machine in [pentium_pro(), r10000()] {
        let base = baseline(&machine, w);
        for policy in [
            HelperPolicy::Prefetch,
            HelperPolicy::Restructure { hoist: true },
        ] {
            let cfg = UnboundedConfig {
                chunk_bytes: CHUNK_64K,
                policy,
                calls: 2,
                flush_between_calls: true,
            };
            let r = run_unbounded(&machine, w, &cfg);
            cols.push(r.loop_speedups_vs(&base));
        }
    }
    for i in 0..w.loops.len() {
        println!(
            "{}",
            row(
                &[
                    w.loops[i].name.clone(),
                    format!("{:.2}", cols[0][i]),
                    format!("{:.2}", cols[1][i]),
                    format!("{:.2}", cols[2][i]),
                    format!("{:.2}", cols[3][i]),
                ],
                &widths
            )
        );
    }
    let max = cols
        .iter()
        .flat_map(|c| c.iter())
        .cloned()
        .fold(0.0f64, f64::max);
    println!("\nBest individual-loop speedup: {max:.1}  (paper: 'as high as 30' with unbounded");
    println!("processors; bounded 4-8 processor results are 'more modest')");
}

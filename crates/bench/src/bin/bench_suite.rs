//! bench_suite — the tier-2 perf-trajectory snapshot.
//!
//! Runs a fixed set of runtime measurements — token-pass microbench,
//! pack/prefetch helper throughput, an observed cascaded run of the
//! synthetic loop, the miniature wave5 end-to-end, and the deterministic
//! simulator on the same problems — and emits one machine-readable JSON
//! snapshot (`BENCH_runtime.json`).
//!
//! The snapshot splits into two maps with different contracts:
//!
//! * `exact` — structural counters (chunks, handoffs, bytes, simulated
//!   cycles/misses). Deterministic for a given scale: independent of the
//!   host, load, and build profile. `bench_diff` gates on these — any
//!   drift is a real behaviour change, never flakiness.
//! * `timing_ns` — wall-clock measurements. Host-dependent by nature;
//!   `bench_diff` reports their drift but does not gate on it unless
//!   asked (`--max-regress`).
//!
//! Regenerate the checked-in baseline with:
//!
//! ```text
//! cargo run --release -p cascade-bench --bin bench_suite -- --out BENCH_runtime.json
//! ```
//!
//! `CASCADE_SCALE` shrinks every problem for smoke runs (counters then
//! differ from the full-scale baseline, which `bench_diff` refuses to
//! compare — the params must match).

use std::time::Instant;

use cascade_analyze::plan::plan_loop;
use cascade_bench::{baseline, cascade_cfg, header, parmvr, scale_from_args, CHUNK_64K};
use cascade_core::metrics::fmt_f64;
use cascade_core::{run_cascaded as sim_run_cascaded, HelperPolicy};
use cascade_mem::machines::pentium_pro;
use cascade_rt::{
    fission_specs, try_run_cascaded_observed, try_run_governed, try_run_planned, Observe,
    RealKernel, RtPolicy, RunConfig, RunnerConfig, SpecProgram, Token, Tolerance, VerifyPolicy,
};
use cascade_synth::{Synth, Variant};
use cascade_trace::{
    AddressSpace, Arena, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};

#[derive(Default)]
struct Suite {
    exact: Vec<(String, f64)>,
    timing: Vec<(String, f64)>,
}

impl Suite {
    fn exact(&mut self, key: &str, v: f64) {
        self.exact.push((key.to_string(), v));
    }
    fn timing(&mut self, key: &str, v: f64) {
        self.timing.push((key.to_string(), v));
    }

    fn to_json(&self, scale: f64) -> String {
        let map = |pairs: &[(String, f64)]| -> String {
            let mut out = String::new();
            for (i, (k, v)) in pairs.iter().enumerate() {
                let sep = if i + 1 < pairs.len() { "," } else { "" };
                out.push_str(&format!("    \"{k}\": {}{sep}\n", fmt_f64(*v)));
            }
            out
        };
        format!(
            "{{\n  \"schema\": \"cascade-bench-v1\",\n  \"params\": {{\"scale\": {}, \"threads\": 2}},\n  \"exact\": {{\n{}  }},\n  \"timing_ns\": {{\n{}  }}\n}}\n",
            fmt_f64(scale),
            map(&self.exact),
            map(&self.timing),
        )
    }
}

/// A lag-2 recurrence (`a(i+2) = f(a(i))`) plus an independent consumer:
/// the planner fissions it into `[doacross(2), parallel]`, so the
/// planned executor exercises the post/wait pipeline.
fn doacross_workload(n: u64) -> (Workload, Arena) {
    let mut space = AddressSpace::new();
    let a = space.alloc("a", 8, n + 2);
    let x = space.alloc("x", 8, n);
    let sref = |name: &'static str, array, base, mode| StreamRef {
        name,
        array,
        pattern: Pattern::Affine { base, stride: 1 },
        mode,
        bytes: 8,
        hoistable: false,
    };
    let spec = LoopSpec {
        name: "bench-doacross".into(),
        iters: n,
        refs: vec![
            sref("a(i)", a, 0, Mode::Read),
            sref("a(i+2)", a, 2, Mode::Write),
            sref("x(i)", x, 0, Mode::Write),
        ],
        compute: 4.0,
        hoistable_compute: 0.0,
        hoist_result_bytes: 0,
    };
    let w = Workload {
        space,
        index: IndexStore::new(),
        loops: vec![spec],
    };
    let mut arena = Arena::new(&w.space);
    for i in 0..n + 2 {
        arena.set_f64(&w.space, a, i, (i % 23) as f64 * 0.1875 + 0.25);
    }
    (w, arena)
}

fn main() {
    let scale = scale_from_args(1.0);
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
    };
    let mut suite = Suite::default();

    // --- token-pass microbench (the paper's transfer-of-control cost) ---
    let transfers = 10_000u64;
    let t0 = Instant::now();
    let t = Token::new();
    for i in 0..transfers {
        t.release_to(i + 1);
        std::hint::black_box(t.wait_for(i + 1));
    }
    let per_transfer = t0.elapsed().as_nanos() as f64 / transfers as f64;
    suite.exact("token_pass.transfers", transfers as f64);
    suite.timing("token_pass.per_transfer_ns", per_transfer);

    // --- pack / prefetch helper throughput ---
    let n = (((64u64 << 10) as f64 * scale) as u64).max(1024) / 8 * 8;
    let s = Synth::build(n, Variant::Dense, 9);
    let prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    let mut buf = Vec::new();
    let t0 = Instant::now();
    for i in 0..n {
        k.pack_iter(i, &mut buf);
    }
    let pack_ns = t0.elapsed().as_nanos() as f64;
    suite.exact("helpers.packed_bytes", buf.len() as f64);
    suite.timing("helpers.pack_pass_ns", pack_ns);
    let t0 = Instant::now();
    for i in 0..n {
        k.prefetch_iter(i);
    }
    suite.exact(
        "helpers.prefetch_bytes",
        (n * k.prefetch_bytes_per_iter()) as f64,
    );
    suite.timing("helpers.prefetch_pass_ns", t0.elapsed().as_nanos() as f64);

    // --- observed cascaded run of the synthetic loop ---
    let cfg = RunnerConfig {
        nthreads: 2,
        iters_per_chunk: 4096,
        policy: RtPolicy::Restructure,
        poll_batch: 64,
    };
    let stats = try_run_cascaded_observed(&k, &cfg, &Tolerance::default(), &Observe::default())
        .expect("fault-free run must succeed");
    let m = stats.metrics();
    suite.exact("rt_cascade.chunks", stats.chunks as f64);
    suite.exact("rt_cascade.iters", stats.iters as f64);
    suite.exact("rt_cascade.handoffs", m.handoff.count as f64);
    suite.exact("rt_cascade.exec_samples", m.chunk_exec.count as f64);
    suite.timing("rt_cascade.wall_ns", stats.elapsed.as_nanos() as f64);

    // --- verified execution: digest handoffs + full-replay audit ---
    // The same synthetic loop under `VerifyPolicy::EveryChunk`. The
    // counters are structural: claimants replay-verify every committed
    // predecessor (chunks - 1 of them; the supervisor audits the final
    // chunk outside the per-thread counters) and the arena is scrubbed
    // exactly twice (baseline + post-join compare). The digest/replay
    // path cost is host-dependent and lands in `timing`.
    let vs = Synth::build(n, Variant::Dense, 9);
    let vprog = SpecProgram::new(vs.workload, vs.arena).unwrap();
    let vk = vprog.kernel(0);
    let vcfg = RunConfig {
        runner: cfg.clone(),
        verify: VerifyPolicy::EveryChunk,
        ..RunConfig::default()
    };
    let vstats = try_run_governed(&vk, &vcfg).expect("fault-free run must succeed");
    let verified: u64 = vstats.threads.iter().map(|t| t.verified_chunks).sum();
    let verify_ns: u128 = vstats.threads.iter().map(|t| t.verify_ns).sum();
    suite.exact("verify.chunks", vstats.chunks as f64);
    suite.exact("verify.replayed_chunks", verified as f64);
    suite.exact("verify.scrubs", vstats.scrubs as f64);
    suite.timing("verify.digest_replay_ns", verify_ns as f64);
    suite.timing("verify.wall_ns", vstats.elapsed.as_nanos() as f64);

    // --- miniature wave5 end-to-end on real threads ---
    let pscale = (0.02 * scale).max(0.005);
    let p = cascade_wave5::Parmvr::build(cascade_wave5::ParmvrParams {
        scale: pscale,
        seed: 5,
    });
    let wprog = SpecProgram::new(p.workload, p.arena).unwrap();
    let wcfg = RunnerConfig {
        nthreads: 2,
        iters_per_chunk: 2048,
        policy: RtPolicy::Restructure,
        poll_batch: 64,
    };
    let t0 = Instant::now();
    let (mut chunks, mut iters, mut handoffs) = (0u64, 0u64, 0u64);
    for l in 0..wprog.num_loops() {
        let k = wprog.kernel(l);
        let stats =
            try_run_cascaded_observed(&k, &wcfg, &Tolerance::default(), &Observe::default())
                .expect("fault-free run must succeed");
        chunks += stats.chunks;
        iters += stats.iters;
        handoffs += stats.metrics().handoff.count;
    }
    suite.exact("wave5.loops", wprog.num_loops() as f64);
    suite.exact("wave5.chunks", chunks as f64);
    suite.exact("wave5.iters", iters as f64);
    suite.exact("wave5.handoffs", handoffs as f64);
    suite.timing("wave5.wall_ns", t0.elapsed().as_nanos() as f64);

    // --- plan-driven execution: fission + the DOACROSS post/wait pipeline ---
    // fused_stream fissions into [sequential residue, parallel consumer];
    // the lag-2 recurrence plans [doacross(2), parallel]. Sub-loop
    // counts, per-sub-loop chunk counts, and post/wait gate counts are
    // structural — deterministic for a given scale — so they gate in
    // `exact`; gate-stall time is host-dependent and lands in `timing`.
    let fused = cascade_kernels::fused_stream(n, 11);
    let (dw, darena) = doacross_workload(n);
    let planned_cfg = RunConfig {
        runner: RunnerConfig {
            nthreads: 2,
            iters_per_chunk: 1024,
            policy: RtPolicy::Restructure,
            poll_batch: 64,
        },
        ..RunConfig::default()
    };
    let t0 = Instant::now();
    let mut stall_ns = 0u128;
    for (tag, w, arena) in [
        ("fused", fused.workload, fused.arena),
        ("doacross", dw, darena),
    ] {
        let plan = plan_loop(&w, &w.loops[0]);
        assert!(!plan.opaque && !plan.partition.is_empty(), "{tag}: no plan");
        let fw = Workload {
            space: w.space.clone(),
            index: w.index.clone(),
            loops: fission_specs(&w.loops[0], &plan),
        };
        let prog = SpecProgram::new(fw, arena).unwrap();
        let kernels: Vec<_> = (0..plan.partition.len()).map(|g| prog.kernel(g)).collect();
        let stats =
            try_run_planned(&kernels, &plan, &planned_cfg).expect("fault-free run must succeed");
        suite.exact(
            &format!("planned.{tag}.sub_loops"),
            stats.sub_loops.len() as f64,
        );
        suite.exact(&format!("planned.{tag}.iters"), stats.iters as f64);
        suite.exact(
            &format!("planned.{tag}.post_waits"),
            stats.post_waits() as f64,
        );
        for s in &stats.sub_loops {
            suite.exact(
                &format!("planned.{tag}.sub{}_chunks", s.index),
                s.chunks as f64,
            );
        }
        stall_ns += stats.post_wait_stall_ns();
    }
    suite.timing("planned.post_wait_stall_ns", stall_ns as f64);
    suite.timing("planned.wall_ns", t0.elapsed().as_nanos() as f64);

    // --- the deterministic simulator on the same wave5 problem ---
    let machine = pentium_pro();
    let w = parmvr(pscale);
    let t0 = Instant::now();
    let base = baseline(&machine, &w.workload);
    let casc = sim_run_cascaded(
        &machine,
        &w.workload,
        &cascade_cfg(4, CHUNK_64K, HelperPolicy::Restructure { hoist: true }),
    );
    suite.exact("sim_wave5.base_cycles", base.total_cycles());
    suite.exact("sim_wave5.casc_cycles", casc.total_cycles());
    suite.exact(
        "sim_wave5.exec_l2_misses",
        casc.loops.iter().map(|l| l.exec.l2_misses).sum::<u64>() as f64,
    );
    suite.timing("sim_wave5.host_wall_ns", t0.elapsed().as_nanos() as f64);

    let json = suite.to_json(scale);
    match out_path {
        Some(path) => {
            header(&format!(
                "Bench suite: perf-trajectory snapshot (scale {scale})"
            ));
            println!(
                "{} exact counters, {} timings",
                suite.exact.len(),
                suite.timing.len()
            );
            for (k, v) in &suite.exact {
                println!("  exact   {k:<28} {}", fmt_f64(*v));
            }
            for (k, v) in &suite.timing {
                println!("  timing  {k:<28} {:.0} ns", v);
            }
            std::fs::write(&path, &json).expect("write snapshot");
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
}

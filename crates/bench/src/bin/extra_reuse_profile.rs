//! Extra experiment H: stream-theoretic explanation of restructuring.
//!
//! Independent of any simulator, LRU stack distances prove the §2.1
//! claim: the execution-phase reference stream of a restructured chunk
//! (a dense sequential buffer plus in-place writes) has a compulsory-only
//! reuse profile, while the original gather stream has reuse distances
//! far beyond any cache capacity. Reuse distance >= capacity is a
//! guaranteed fully-associative LRU miss, so the comparison is
//! machine-independent ground truth for the technique.

use cascade_bench::{header, parmvr, row, scale_from_args};
use cascade_core::ChunkPlan;
use cascade_trace::{reuse_distances, Mode, Resolver, TraceRef};

fn main() {
    let scale = scale_from_args(0.25);
    header(&format!(
        "Extra H: reuse-distance profile, original vs restructured stream (scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let res = Resolver::new(&w.space, &w.index);
    let line = 32u64;

    let widths = [46usize, 10, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "loop / stream".into(),
                "accesses".into(),
                "lines (WS)".into(),
                "mean dist".into(),
                "miss@L1".into(),
                "miss@L2".into()
            ],
            &widths
        )
    );
    // Fully-associative equivalents of the Pentium Pro caches.
    let l1_lines = 8 * 1024 / 32;
    let l2_lines = 512 * 1024 / 32;

    for spec in w.loops.iter().filter(|l| l.has_indirection()).take(3) {
        // Analyze one 64KB chunk (the paper's unit of execution).
        let plan = ChunkPlan::new(spec, 64 * 1024, line);
        let range = plan.range(0);

        // Original execution stream: index reads + data accesses.
        let mut original = Vec::new();
        for i in range.clone() {
            for r in &spec.refs {
                if let Some(ix) = res.index_access(r, i) {
                    original.push(TraceRef {
                        addr: ix.addr,
                        bytes: ix.bytes,
                    });
                }
                let d = res.data_access(r, i);
                original.push(TraceRef {
                    addr: d.addr,
                    bytes: d.bytes,
                });
                if matches!(r.mode, Mode::Modify) {
                    original.push(TraceRef {
                        addr: d.addr,
                        bytes: d.bytes,
                    });
                }
            }
        }

        // Restructured execution stream: one dense buffer read per
        // iteration plus the in-place writes.
        let pbpi = spec.packed_bytes_per_iter(true);
        let buffer_base = w.space.extent(); // anywhere disjoint
        let mut restructured = Vec::new();
        for i in range.clone() {
            if pbpi > 0 {
                restructured.push(TraceRef {
                    addr: buffer_base + (i - range.start) * pbpi,
                    bytes: pbpi as u32,
                });
            }
            for r in &spec.refs {
                if !r.mode.writes() {
                    continue;
                }
                let d = res.data_access(r, i);
                restructured.push(TraceRef {
                    addr: d.addr,
                    bytes: d.bytes,
                });
                if matches!(r.mode, Mode::Modify) {
                    restructured.push(TraceRef {
                        addr: d.addr,
                        bytes: d.bytes,
                    });
                }
            }
        }

        for (label, refs) in [("original", &original), ("restructured", &restructured)] {
            let prof = reuse_distances(refs, line);
            println!(
                "{}",
                row(
                    &[
                        format!("{} / {label}", &spec.name[..spec.name.len().min(32)]),
                        refs.len().to_string(),
                        prof.working_set_lines.to_string(),
                        prof.mean_distance()
                            .map_or("-".into(), |d| format!("{d:.0}")),
                        prof.misses_at_capacity(l1_lines).to_string(),
                        prof.misses_at_capacity(l2_lines).to_string(),
                    ],
                    &widths
                )
            );
        }
        println!();
    }
    println!("Reading: per 64KB chunk, the restructured stream's working set and miss counts");
    println!("collapse to near-compulsory (the dense buffer reuses every line fully and the");
    println!("only remaining spread is the in-place writes), while the original gather stream");
    println!("misses on nearly every access even in an L2-sized fully-associative cache.");
}

//! Extra experiment D: ablating the §2.1 hoisting option of the
//! restructuring helper ("in some cases, computation that involves only
//! read-only data values can be done during the helper phase. This can
//! reduce both the amount of work required during the execution phase and
//! the amount of data that must be stored in the sequential buffer").
//!
//! Hoisting matters most where read-only-only arithmetic dominates (L7,
//! the compute-heavy gather) and where it fuses several packed operands
//! into one result value (L2, L6, L9).

use cascade_bench::{
    baseline, cascaded, header, parmvr, row, scale_from_args, CHUNK_64K, SWEEP_SCALE,
};
use cascade_core::HelperPolicy;
use cascade_mem::machines::{pentium_pro, r10000};

fn main() {
    let scale = scale_from_args(SWEEP_SCALE);
    header(&format!(
        "Extra D: restructuring with vs without compute hoisting (4 procs, 64KB chunks, scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let widths = [44usize, 12, 12, 9];
    for machine in [pentium_pro(), r10000()] {
        println!("{}:", machine.name);
        let base = baseline(&machine, w);
        let plain = cascaded(
            &machine,
            w,
            4,
            CHUNK_64K,
            HelperPolicy::Restructure { hoist: false },
        );
        let hoist = cascaded(
            &machine,
            w,
            4,
            CHUNK_64K,
            HelperPolicy::Restructure { hoist: true },
        );
        println!(
            "{}",
            row(
                &[
                    "loop".into(),
                    "no-hoist".into(),
                    "hoist".into(),
                    "gain".into()
                ],
                &widths
            )
        );
        let sp = plain.loop_speedups_vs(&base);
        let sh = hoist.loop_speedups_vs(&base);
        for i in 0..w.loops.len() {
            println!(
                "{}",
                row(
                    &[
                        w.loops[i].name.clone(),
                        format!("{:.2}", sp[i]),
                        format!("{:.2}", sh[i]),
                        format!("{:+.0}%", 100.0 * (sh[i] / sp[i] - 1.0)),
                    ],
                    &widths
                )
            );
        }
        println!(
            "{}",
            row(
                &[
                    "OVERALL".into(),
                    format!("{:.2}", plain.overall_speedup_vs(&base)),
                    format!("{:.2}", hoist.overall_speedup_vs(&base)),
                    format!(
                        "{:+.0}%",
                        100.0 * (hoist.total_cycles() / plain.total_cycles() - 1.0).abs()
                    ),
                ],
                &widths
            )
        );
        println!();
    }
    println!("Expected: the largest gains on the compute-heavy gather (L7) and on loops whose");
    println!("packed operands fuse into one result (L2, L6, L9); ~0% where nothing is hoistable.");
}

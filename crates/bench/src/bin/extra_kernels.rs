//! Extra experiment G: cascaded execution across loop *classes*.
//!
//! The paper evaluates one application; this experiment runs the
//! technique over the canonical population of unparallelizable kernels
//! (`cascade-kernels`) to map where cascading pays: memory-bound chases
//! and scatters gain, cache-resident or compute-bound recurrences do not
//! — the same boundary the paper draws in §4 ("when loops contain little
//! parallelism and when memory stalls contribute significantly to
//! execution time, cascaded execution should provide higher speedups").

use cascade_bench::{header, row, scale_from_args};
use cascade_core::{run_cascaded, run_sequential, CascadeConfig, HelperPolicy};
use cascade_kernels::suite;
use cascade_mem::machines::{pentium_pro, r10000};

fn main() {
    // `scale` here multiplies the element count (default 256K elements).
    let scale = scale_from_args(1.0);
    let n = ((256u64 << 10) as f64 * scale) as u64;
    header(&format!(
        "Extra G: cascaded execution across kernel classes (n = {n}, 4 procs, 64KB)"
    ));
    let widths = [18usize, 11, 10, 10, 12, 10];
    println!(
        "{}",
        row(
            &[
                "kernel".into(),
                "machine".into(),
                "pre-spd".into(),
                "rst-spd".into(),
                "base L2 miss".into(),
                "coverage".into()
            ],
            &widths
        )
    );
    for machine in [pentium_pro(), r10000()] {
        for k in suite(n, 0x1999) {
            let base = run_sequential(&machine, &k.workload, 2, true);
            let mk = |policy| CascadeConfig {
                nprocs: 4,
                policy,
                ..CascadeConfig::default()
            };
            let pre = run_cascaded(&machine, &k.workload, &mk(HelperPolicy::Prefetch));
            let rst = run_cascaded(
                &machine,
                &k.workload,
                &mk(HelperPolicy::Restructure { hoist: true }),
            );
            println!(
                "{}",
                row(
                    &[
                        k.name.to_string(),
                        machine.name.to_string(),
                        format!("{:.2}", pre.overall_speedup_vs(&base)),
                        format!("{:.2}", rst.overall_speedup_vs(&base)),
                        base.loops[0].exec.l2_misses.to_string(),
                        format!("{:.0}%", rst.loops[0].helper_coverage() * 100.0),
                    ],
                    &widths
                )
            );
        }
        println!();
    }
    println!("Reading: the random pointer chase and the gather/scatter kernels gain most;");
    println!("the IIR recurrence (streaming, compute-carried) and small-footprint kernels");
    println!("gain least — cascading pays where memory stalls dominate, as §4 argues.");
}

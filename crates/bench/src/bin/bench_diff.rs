//! bench_diff — compare two `bench_suite` snapshots.
//!
//! ```text
//! bench_diff BASELINE.json CURRENT.json [--max-regress PCT]
//! ```
//!
//! The two maps of a snapshot are held to different standards:
//!
//! * `exact` counters must match **exactly** — they are deterministic for
//!   a given scale, so any difference is a behaviour change (chunking,
//!   handoff protocol, helper byte accounting, simulator cost model) and
//!   fails the diff (exit 1).
//! * `timing_ns` entries are host-dependent: their drift is reported but
//!   only gates when `--max-regress PCT` is given (intended for local
//!   tracking, not CI, which runs on varying hardware).
//!
//! Snapshots taken at different scales are not comparable; mismatched
//! `params` is a usage error (exit 2).

use cascade_bench::json::{parse, Json};

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("cascade-bench-v1") => Ok(doc),
        other => Err(format!("{path}: unsupported schema {other:?}")),
    }
}

fn num_map<'a>(doc: &'a Json, key: &str) -> Vec<(&'a str, f64)> {
    doc.get(key)
        .and_then(Json::as_obj)
        .map(|members| {
            members
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|v| (k.as_str(), v)))
                .collect()
        })
        .unwrap_or_default()
}

fn usage() -> ! {
    eprintln!("usage: bench_diff BASELINE.json CURRENT.json [--max-regress PCT]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regress: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-regress" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) => max_regress = Some(p),
                None => usage(),
            }
        } else {
            paths.push(a.clone());
        }
    }
    let [base_path, cur_path] = paths.as_slice() else {
        usage();
    };
    let (base, cur) = match (load(base_path), load(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_diff: {e}");
                }
            }
            std::process::exit(2);
        }
    };

    // Snapshots are only comparable at identical parameters.
    let (bp, cp) = (num_map(&base, "params"), num_map(&cur, "params"));
    if bp != cp {
        eprintln!("bench_diff: param mismatch — snapshots are not comparable");
        eprintln!("  baseline: {bp:?}");
        eprintln!("  current:  {cp:?}");
        std::process::exit(2);
    }

    let mut failures = 0usize;

    println!("exact counters (must match):");
    let (be, ce) = (num_map(&base, "exact"), num_map(&cur, "exact"));
    for (k, bv) in &be {
        match ce.iter().find(|(ck, _)| ck == k) {
            Some((_, cv)) if cv == bv => {
                println!("  ok       {k:<28} {bv}");
            }
            Some((_, cv)) => {
                failures += 1;
                println!("  CHANGED  {k:<28} {bv} -> {cv}");
            }
            None => {
                failures += 1;
                println!("  MISSING  {k:<28} (baseline {bv})");
            }
        }
    }
    for (k, cv) in &ce {
        if !be.iter().any(|(bk, _)| bk == k) {
            failures += 1;
            println!("  NEW      {k:<28} {cv} (not in baseline)");
        }
    }

    println!(
        "timings (informational{}):",
        match max_regress {
            Some(p) => format!(", gated at +{p}%"),
            None => String::new(),
        }
    );
    let (bt, ct) = (num_map(&base, "timing_ns"), num_map(&cur, "timing_ns"));
    for (k, bv) in &bt {
        let Some((_, cv)) = ct.iter().find(|(ck, _)| ck == k) else {
            println!("  -        {k:<28} missing in current");
            continue;
        };
        let delta = if *bv > 0.0 {
            100.0 * (cv - bv) / bv
        } else {
            0.0
        };
        let gated = matches!(max_regress, Some(p) if delta > p);
        if gated {
            failures += 1;
        }
        println!(
            "  {}  {k:<28} {bv:.0} -> {cv:.0} ns ({delta:+.1}%)",
            if gated { "SLOWER " } else { "       " }
        );
    }

    if failures > 0 {
        println!("bench_diff: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("bench_diff: snapshots agree");
}

//! Figure 5: L1 data cache misses in each PARMVR loop — Original,
//! Prefetched and Restructured (4 procs, 64KB chunks) — on both machines.
//!
//! Paper reference: on both platforms data restructuring eliminates L1
//! data cache misses in several of the loops (it removes L1 conflicts);
//! prefetching alone does not reduce L1 misses (64KB chunks exceed both
//! L1 caches, so prefetched lines live in L2 when execution reaches them).

use cascade_bench::{
    baseline, cascaded, header, parmvr, row, scale_from_args, CHUNK_64K, FULL_SCALE,
};
use cascade_core::HelperPolicy;
use cascade_mem::machines::{pentium_pro, r10000};

fn main() {
    let scale = scale_from_args(FULL_SCALE);
    header(&format!(
        "Figure 5: L1 data cache misses per PARMVR loop (execution phases; 4 procs, 64KB chunks, scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let widths = [44usize, 11, 11, 12, 7];
    for machine in [pentium_pro(), r10000()] {
        println!("{}:", machine.name);
        let base = baseline(&machine, w);
        let pre = cascaded(&machine, w, 4, CHUNK_64K, HelperPolicy::Prefetch);
        let rst = cascaded(
            &machine,
            w,
            4,
            CHUNK_64K,
            HelperPolicy::Restructure { hoist: true },
        );
        println!(
            "{}",
            row(
                &[
                    "loop".into(),
                    "original".into(),
                    "prefetched".into(),
                    "restructured".into(),
                    "rst/org".into()
                ],
                &widths
            )
        );
        for i in 0..base.loops.len() {
            let (b, pr, rs) = (
                base.loops[i].exec.l1_misses,
                pre.loops[i].exec.l1_misses,
                rst.loops[i].exec.l1_misses,
            );
            println!(
                "{}",
                row(
                    &[
                        base.loops[i].name.clone(),
                        b.to_string(),
                        pr.to_string(),
                        rs.to_string(),
                        format!("{:.2}", rs as f64 / b as f64),
                    ],
                    &widths
                )
            );
        }
        let tb: u64 = base.loops.iter().map(|l| l.exec.l1_misses).sum();
        let tp: u64 = pre.loops.iter().map(|l| l.exec.l1_misses).sum();
        let tr: u64 = rst.loops.iter().map(|l| l.exec.l1_misses).sum();
        println!(
            "{}",
            row(
                &[
                    "TOTAL".into(),
                    tb.to_string(),
                    tp.to_string(),
                    tr.to_string(),
                    String::new()
                ],
                &widths
            )
        );
        println!();
    }
    println!("Paper: restructuring eliminates L1 misses in several loops (conflict removal);");
    println!("       prefetching does not reduce L1 misses on either platform.");
}

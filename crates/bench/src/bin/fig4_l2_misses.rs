//! Figure 4: L2 cache misses in each PARMVR loop — Original, Prefetched
//! and Restructured (4 procs, 64KB chunks) — on both machines.
//!
//! Paper reference: cascaded execution eliminates 93-94% of execution-
//! phase L2 misses on the Pentium Pro; restructuring eliminates ~47% on
//! the R10000 while prefetching does not reduce R10000 miss counts; the
//! original sequential run has ~2.59x more L2 misses on the R10000 than on
//! the Pentium Pro (lower L2 associativity).

use cascade_bench::{
    baseline, cascaded, header, parmvr, row, scale_from_args, CHUNK_64K, FULL_SCALE,
};
use cascade_core::HelperPolicy;
use cascade_mem::machines::{pentium_pro, r10000};

fn main() {
    let scale = scale_from_args(FULL_SCALE);
    header(&format!(
        "Figure 4: L2 cache misses per PARMVR loop (execution phases; 4 procs, 64KB chunks, scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let widths = [44usize, 11, 11, 12];
    let mut baseline_totals = Vec::new();
    for machine in [pentium_pro(), r10000()] {
        println!("{}:", machine.name);
        let base = baseline(&machine, w);
        let pre = cascaded(&machine, w, 4, CHUNK_64K, HelperPolicy::Prefetch);
        let rst = cascaded(
            &machine,
            w,
            4,
            CHUNK_64K,
            HelperPolicy::Restructure { hoist: true },
        );
        println!(
            "{}",
            row(
                &[
                    "loop".into(),
                    "original".into(),
                    "prefetched".into(),
                    "restructured".into()
                ],
                &widths
            )
        );
        for i in 0..base.loops.len() {
            println!(
                "{}",
                row(
                    &[
                        base.loops[i].name.clone(),
                        base.loops[i].exec.l2_misses.to_string(),
                        pre.loops[i].exec.l2_misses.to_string(),
                        rst.loops[i].exec.l2_misses.to_string(),
                    ],
                    &widths
                )
            );
        }
        let tb: u64 = base.loops.iter().map(|l| l.exec.l2_misses).sum();
        let tp: u64 = pre.loops.iter().map(|l| l.exec.l2_misses).sum();
        let tr: u64 = rst.loops.iter().map(|l| l.exec.l2_misses).sum();
        println!(
            "{}",
            row(
                &[
                    "TOTAL".into(),
                    tb.to_string(),
                    tp.to_string(),
                    tr.to_string()
                ],
                &widths
            )
        );
        println!(
            "  eliminated: prefetched {:.0}%, restructured {:.0}%  (helper-phase L2 misses: pre {}, rst {})",
            100.0 * (1.0 - tp as f64 / tb as f64),
            100.0 * (1.0 - tr as f64 / tb as f64),
            pre.loops.iter().map(|l| l.helper.l2_misses).sum::<u64>(),
            rst.loops.iter().map(|l| l.helper.l2_misses).sum::<u64>(),
        );
        baseline_totals.push(tb);
        println!();
    }
    println!(
        "Original-sequential L2 miss ratio R10000/PPro: {:.2}  (paper: 2.59)",
        baseline_totals[1] as f64 / baseline_totals[0] as f64
    );
    println!(
        "Paper: PPro eliminates 93-94% of L2 misses; R10000 restructured ~47%, prefetched ~0%."
    );
}

//! Figure 3: execution times (millions of cycles) of the fifteen PARMVR
//! loops — Original sequential, Prefetched (4 procs, 64KB chunks) and
//! Restructured (4 procs, 64KB chunks) — on both machines.
//!
//! Paper reference: per-loop results vary from a 0.9x slowdown to a 4.5x
//! speedup; restructuring beats prefetching on essentially every loop; on
//! the R10000 prefetching is close to the original for most loops.

use cascade_bench::{
    baseline, cascaded, header, mcycles, parmvr, row, scale_from_args, CHUNK_64K, FULL_SCALE,
};
use cascade_core::HelperPolicy;
use cascade_mem::machines::{pentium_pro, r10000};

fn main() {
    let scale = scale_from_args(FULL_SCALE);
    header(&format!(
        "Figure 3: execution time of each PARMVR loop, Mcycles (4 procs, 64KB chunks, scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let widths = [44usize, 10, 11, 12, 8, 8];
    for machine in [pentium_pro(), r10000()] {
        println!("{}:", machine.name);
        let base = baseline(&machine, w);
        let pre = cascaded(&machine, w, 4, CHUNK_64K, HelperPolicy::Prefetch);
        let rst = cascaded(
            &machine,
            w,
            4,
            CHUNK_64K,
            HelperPolicy::Restructure { hoist: true },
        );
        println!(
            "{}",
            row(
                &[
                    "loop".into(),
                    "original".into(),
                    "prefetched".into(),
                    "restructured".into(),
                    "pre-spd".into(),
                    "rst-spd".into()
                ],
                &widths
            )
        );
        for i in 0..base.loops.len() {
            let (b, pr, rs) = (&base.loops[i], &pre.loops[i], &rst.loops[i]);
            println!(
                "{}",
                row(
                    &[
                        b.name.clone(),
                        mcycles(b.cycles),
                        mcycles(pr.cycles),
                        mcycles(rs.cycles),
                        format!("{:.2}", b.cycles / pr.cycles),
                        format!("{:.2}", b.cycles / rs.cycles),
                    ],
                    &widths
                )
            );
        }
        println!(
            "{}",
            row(
                &[
                    "TOTAL".into(),
                    mcycles(base.total_cycles()),
                    mcycles(pre.total_cycles()),
                    mcycles(rst.total_cycles()),
                    format!("{:.2}", pre.overall_speedup_vs(&base)),
                    format!("{:.2}", rst.overall_speedup_vs(&base)),
                ],
                &widths
            )
        );
        println!();
    }
    println!("Paper: individual loops range 0.9x..4.5x; restructured >= prefetched everywhere;");
    println!("       R10000 prefetched ~= original for most loops.");
}

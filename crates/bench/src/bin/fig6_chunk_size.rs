//! Figure 6: effect of chunk size on overall PARMVR speedup, 4 processors,
//! chunk sizes 4KB..2048KB, both policies, both machines.
//!
//! Paper reference: the optimum is 16KB-64KB — larger than either L1 cache
//! — because the cost of transferring control is significant (120 / 500
//! cycles); tiny chunks drown in transfer overhead and very large chunks
//! lose helper coverage and overflow the caches.

use cascade_bench::plot::{line_chart, Series};
use cascade_bench::{
    baseline, cascaded, header, paper_policies, parmvr, row, scale_from_args, SWEEP_SCALE,
};
use cascade_mem::machines::{pentium_pro, r10000};

fn main() {
    let scale = scale_from_args(SWEEP_SCALE);
    header(&format!(
        "Figure 6: PARMVR speedup vs chunk size (4 processors, scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let sizes_kb: Vec<u64> = vec![4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];
    let widths: Vec<usize> = std::iter::once(30usize)
        .chain(sizes_kb.iter().map(|_| 7))
        .collect();
    for machine in [pentium_pro(), r10000()] {
        let base = baseline(&machine, w);
        let mut head = vec![format!("{} chunk KB ->", machine.name)];
        head.extend(sizes_kb.iter().map(|k| k.to_string()));
        println!("{}", row(&head, &widths));
        let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
        for policy in paper_policies() {
            let mut cells = vec![policy.label().to_string()];
            let mut ys = Vec::new();
            for &kb in &sizes_kb {
                let r = cascaded(&machine, w, 4, kb * 1024, policy);
                let s = r.overall_speedup_vs(&base);
                ys.push(s);
                cells.push(format!("{s:.2}"));
            }
            curves.push((policy.label().to_string(), ys));
            println!("{}", row(&cells, &widths));
        }
        println!();
        let xl: Vec<String> = sizes_kb.iter().map(|k| format!("{k}K")).collect();
        let xl: Vec<&str> = xl.iter().map(|s| s.as_str()).collect();
        let series: Vec<Series> = curves
            .iter()
            .map(|(l, v)| Series {
                label: l,
                values: v,
            })
            .collect();
        println!(
            "{}",
            line_chart(
                &format!("{} — speedup vs chunk size", machine.name),
                &xl,
                &series,
                10
            )
        );
    }
    println!("Paper: optimum chunk size 16KB-64KB at 4 processors, larger than either L1 cache;");
    println!("       speedup collapses at 4KB (transfer overhead) and declines past ~256KB.");
}

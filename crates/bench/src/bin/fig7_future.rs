//! Figure 7: cascaded-execution speedups with increased memory access
//! costs — the §3.4 synthetic loop `X(IJ(i)) = X(IJ(i)) + A(i) + B(i)`,
//! dense (k=1) and sparse (k=8), chunk sizes 1KB..256KB, both machines,
//! under the paper's unbounded-processor single-processor-alternation
//! methodology (helpers always complete; total = execution phases +
//! one transfer per chunk).
//!
//! Paper reference: dense ~4x on both machines; sparse ~16x on the
//! Pentium Pro and ~14x on the R10000; restructured above prefetched.

use cascade_bench::plot::{line_chart, Series};
use cascade_bench::{header, row, scale_from_args};
use cascade_core::{run_sequential, run_unbounded, HelperPolicy, UnboundedConfig};
use cascade_mem::machines::{pentium_pro, r10000};
use cascade_synth::{Synth, Variant};

fn main() {
    // `scale` multiplies the vector length (default n = 4M integers).
    let scale = scale_from_args(1.0);
    let n = ((4u64 << 20) as f64 * scale) as u64 / 8 * 8;
    header(&format!(
        "Figure 7: synthetic-loop speedups, unbounded processors (n = {n})"
    ));
    let sizes_kb: Vec<u64> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256];
    let widths: Vec<usize> = std::iter::once(34usize)
        .chain(sizes_kb.iter().map(|_| 6))
        .collect();

    for machine in [pentium_pro(), r10000()] {
        let mut head = vec![format!("{} chunk KB ->", machine.name)];
        head.extend(sizes_kb.iter().map(|k| k.to_string()));
        println!("{}", row(&head, &widths));
        let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
        for variant in [Variant::Sparse, Variant::Dense] {
            let synth = Synth::build(n, variant, cascade_bench::SEED);
            let base = run_sequential(&machine, &synth.workload, 1, true);
            for policy in [
                HelperPolicy::Restructure { hoist: true },
                HelperPolicy::Prefetch,
            ] {
                let label = format!("{}, {}", policy.label(), variant.label());
                let mut cells = vec![label.clone()];
                let mut ys = Vec::new();
                for &kb in &sizes_kb {
                    let cfg = UnboundedConfig {
                        chunk_bytes: kb * 1024,
                        policy,
                        calls: 1,
                        flush_between_calls: true,
                    };
                    let r = run_unbounded(&machine, &synth.workload, &cfg);
                    let s = r.overall_speedup_vs(&base);
                    ys.push(s);
                    cells.push(format!("{s:.1}"));
                }
                curves.push((label, ys));
                println!("{}", row(&cells, &widths));
            }
        }
        println!();
        let xl: Vec<String> = sizes_kb.iter().map(|k| format!("{k}K")).collect();
        let xl: Vec<&str> = xl.iter().map(|s| s.as_str()).collect();
        let series: Vec<Series> = curves
            .iter()
            .map(|(l, v)| Series {
                label: l,
                values: v,
            })
            .collect();
        println!(
            "{}",
            line_chart(
                &format!("{} — synthetic-loop speedup vs chunk size", machine.name),
                &xl,
                &series,
                12
            )
        );
    }
    println!("Paper: sparse restructured ~16x (PPro) / ~14x (R10000); dense ~4x on both;");
    println!("       speedups rise to a plateau in the tens-of-KB chunk range.");
}

//! Extra experiment C: the real-thread runtime on this host.
//!
//! Runs the synthetic loop and a miniature PARMVR under actual cascaded
//! execution (std::thread workers, atomic token, x86-64 prefetch helpers,
//! sequential-buffer packing) and checks bitwise equivalence with the
//! sequential execution. On a multi-core shared-memory host this also
//! reports wall-clock times; on a single-CPU container (like the
//! reproduction environment) the value demonstrated is protocol
//! correctness, not speedup — the quantitative claims live in the
//! simulator experiments.

use cascade_bench::{header, row, scale_from_args};
use cascade_rt::{run_cascaded, run_sequential, RtPolicy, RunnerConfig, SpecProgram};
use cascade_synth::{Synth, Variant};
use cascade_wave5::{Parmvr, ParmvrParams};

fn main() {
    // `scale` multiplies the synthetic vector length (default n = 2M) and
    // the PARMVR problem size.
    let scale = scale_from_args(1.0);
    header("Extra C: real-thread cascaded execution (correctness + wall time on this host)");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host CPUs: {cpus}\n");
    let widths = [30usize, 9, 12, 12, 10, 10];
    println!(
        "{}",
        row(
            &[
                "kernel".into(),
                "policy".into(),
                "seq (ms)".into(),
                "casc (ms)".into(),
                "chunks".into(),
                "bitwise".into()
            ],
            &widths
        )
    );

    // Synthetic loop, dense and sparse.
    for variant in [Variant::Dense, Variant::Sparse] {
        for policy in [RtPolicy::Prefetch, RtPolicy::Restructure] {
            let n = (((1u64 << 21) as f64 * scale) as u64).max(1024) / 8 * 8;
            let seq_sum = {
                let s = Synth::build(n, variant, 3);
                let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
                let k = prog.kernel(0);
                // SAFETY: single-threaded baseline.
                let dt = run_sequential(&k);
                (prog.checksum(), dt)
            };
            let s = Synth::build(n, variant, 3);
            let mut prog = SpecProgram::new(s.workload, s.arena).unwrap();
            let k = prog.kernel(0);
            let cfg = RunnerConfig {
                nthreads: cpus.clamp(1, 4),
                iters_per_chunk: 16 * 1024,
                policy,
                poll_batch: 128,
            };
            let stats = run_cascaded(&k, &cfg);
            let ok = prog.checksum() == seq_sum.0;
            println!(
                "{}",
                row(
                    &[
                        format!("synthetic {}", variant.label()),
                        policy.label().to_string(),
                        format!("{:.2}", seq_sum.1.as_secs_f64() * 1e3),
                        format!("{:.2}", stats.elapsed.as_secs_f64() * 1e3),
                        stats.chunks.to_string(),
                        if ok {
                            "OK".into()
                        } else {
                            "MISMATCH".to_string()
                        },
                    ],
                    &widths
                )
            );
            assert!(ok, "cascaded execution diverged from sequential");
        }
    }

    // Miniature PARMVR: every loop in sequence.
    let scale = (0.02 * scale).max(0.005);
    let seq_sum = {
        let p = Parmvr::build(ParmvrParams { scale, seed: 5 });
        let mut prog = SpecProgram::new(p.workload, p.arena).unwrap();
        let t0 = std::time::Instant::now();
        for i in 0..prog.num_loops() {
            let k = prog.kernel(i);
            run_sequential(&k);
        }
        (prog.checksum(), t0.elapsed())
    };
    let p = Parmvr::build(ParmvrParams { scale, seed: 5 });
    let mut prog = SpecProgram::new(p.workload, p.arena).unwrap();
    let cfg = RunnerConfig {
        nthreads: cpus.clamp(1, 4),
        iters_per_chunk: 2048,
        policy: RtPolicy::Restructure,
        poll_batch: 64,
    };
    let t0 = std::time::Instant::now();
    let mut chunks = 0;
    for i in 0..prog.num_loops() {
        let k = prog.kernel(i);
        chunks += run_cascaded(&k, &cfg).chunks;
    }
    let casc_dt = t0.elapsed();
    let ok = prog.checksum() == seq_sum.0;
    println!(
        "{}",
        row(
            &[
                format!("PARMVR x15 (scale {scale})"),
                "restr.".into(),
                format!("{:.2}", seq_sum.1.as_secs_f64() * 1e3),
                format!("{:.2}", casc_dt.as_secs_f64() * 1e3),
                chunks.to_string(),
                if ok { "OK".into() } else { "MISMATCH".into() },
            ],
            &widths
        )
    );
    assert!(ok, "cascaded PARMVR diverged from sequential");
    println!("\nAll cascaded executions are bitwise identical to sequential execution.");
    if cpus == 1 {
        println!("(single-CPU host: wall-clock comparison is not meaningful here)");
    }
}

//! Figure 2: overall speedup of PARMVR versus processor count, 64KB
//! chunks, Prefetched and Restructured, on both machines.
//!
//! Paper reference values: Pentium Pro restructured reaches ~1.35 at 4
//! processors; R10000 restructured reaches ~1.7 at 8 processors;
//! prefetched on the R10000 stays near 1.0 at all processor counts; every
//! curve rises with processor count (more processors leave more time to
//! complete helper iterations, §3.3).

use cascade_bench::plot::{line_chart, Series};
use cascade_bench::{
    baseline, cascaded, header, paper_policies, parmvr, row, scale_from_args, CHUNK_64K,
    SWEEP_SCALE,
};
use cascade_mem::machines::{pentium_pro, r10000};

fn main() {
    let scale = scale_from_args(SWEEP_SCALE);
    header(&format!(
        "Figure 2: overall PARMVR speedup vs processors (64KB chunks, scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let widths = [11usize, 18, 8, 8, 8, 8];
    for (machine, procs) in [
        (pentium_pro(), vec![2usize, 3, 4]),
        (r10000(), vec![2, 4, 6, 8]),
    ] {
        let base = baseline(&machine, w);
        let mut head = vec!["machine".to_string(), "policy".to_string()];
        head.extend(procs.iter().map(|p| format!("{p} procs")));
        println!("{}", row(&head, &widths));
        let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
        for policy in paper_policies() {
            let mut cells = vec![machine.name.to_string(), policy.label().to_string()];
            let mut ys = Vec::new();
            for &np in &procs {
                let r = cascaded(&machine, w, np, CHUNK_64K, policy);
                let s = r.overall_speedup_vs(&base);
                ys.push(s);
                cells.push(format!("{s:.2}"));
            }
            curves.push((policy.label().to_string(), ys));
            println!("{}", row(&cells, &widths));
        }
        println!();
        let xl: Vec<String> = procs.iter().map(|p| p.to_string()).collect();
        let xl: Vec<&str> = xl.iter().map(|s| s.as_str()).collect();
        let series: Vec<Series> = curves
            .iter()
            .map(|(l, v)| Series {
                label: l,
                values: v,
            })
            .collect();
        println!(
            "{}",
            line_chart(
                &format!("{} — overall speedup vs processors", machine.name),
                &xl,
                &series,
                10
            )
        );
    }
    println!("Paper: PPro restructured ~1.35 @4p, prefetched lower; R10000 restructured ~1.7 @8p,");
    println!("       prefetched ~1.0 flat; all curves rise with processor count.");
}

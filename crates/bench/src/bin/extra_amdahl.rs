//! Extra experiment F: the whole-application consequence (the paper's §1
//! motivation). wave5 spends ~50% of its sequential runtime in PARMVR
//! (§3.1), which resisted parallelization; combining that fraction with
//! our *measured* cascaded speedups projects the application-level value
//! of cascading — exactly the "Amdahl's Law" argument the paper opens
//! with.

use cascade_bench::{
    baseline, cascaded, header, parmvr, row, scale_from_args, CHUNK_64K, SWEEP_SCALE,
};
use cascade_core::{AmdahlModel, HelperPolicy};
use cascade_mem::machines::{pentium_pro, r10000};

fn main() {
    let scale = scale_from_args(SWEEP_SCALE);
    header(&format!(
        "Extra F: whole-application (Amdahl) projection, PARMVR = 50% of wave5 (scale {scale})"
    ));
    let p = parmvr(scale);
    let w = &p.workload;
    let app = AmdahlModel::new(0.5);
    let widths = [11usize, 7, 13, 13, 13, 12];
    println!(
        "{}",
        row(
            &[
                "machine".into(),
                "procs".into(),
                "PARMVR spd".into(),
                "app classic".into(),
                "app cascaded".into(),
                "seq share".into()
            ],
            &widths
        )
    );
    for (machine, procs) in [(pentium_pro(), vec![2usize, 4]), (r10000(), vec![2, 4, 8])] {
        let base = baseline(&machine, w);
        for np in procs {
            let r = cascaded(
                &machine,
                w,
                np,
                CHUNK_64K,
                HelperPolicy::Restructure { hoist: true },
            );
            let s_parmvr = r.overall_speedup_vs(&base);
            println!(
                "{}",
                row(
                    &[
                        machine.name.to_string(),
                        np.to_string(),
                        format!("{s_parmvr:.2}"),
                        format!("{:.2}", app.classic(np)),
                        format!("{:.2}", app.overall_speedup(np, s_parmvr)),
                        format!("{:.0}%", 100.0 * app.sequential_share(np, s_parmvr)),
                    ],
                    &widths
                )
            );
        }
    }
    println!("\nReading: with half the program unparallelizable, classic Amdahl caps wave5 at");
    println!("2x regardless of processor count; cascading the sequential half lifts both the");
    println!("achieved speedup and the ceiling (ceiling = cascaded speedup / serial fraction).");
}

//! One-screen overview: headline numbers of the reproduction next to the
//! paper's headline claims. Useful as a smoke test that the calibration
//! still holds after changes.

use cascade_bench::{baseline, cascaded, header, parmvr, scale_from_args, CHUNK_64K, SWEEP_SCALE};
use cascade_core::HelperPolicy;
use cascade_mem::machines::{pentium_pro, r10000};

fn main() {
    let scale = scale_from_args(SWEEP_SCALE);
    header(&format!("Overview (scale {scale})"));
    let p = parmvr(scale);
    let w = &p.workload;
    let rst = HelperPolicy::Restructure { hoist: true };

    let m = pentium_pro();
    let base = baseline(&m, w);
    let r = cascaded(&m, w, 4, CHUNK_64K, rst);
    let l2b: u64 = base.loops.iter().map(|l| l.exec.l2_misses).sum();
    let l2r: u64 = r.loops.iter().map(|l| l.exec.l2_misses).sum();
    println!(
        "PPro   4 procs restructured: speedup {:.2} (paper 1.35), L2 misses removed {:.0}% (paper 93-94%)",
        r.overall_speedup_vs(&base),
        100.0 * (1.0 - l2r as f64 / l2b as f64)
    );

    let m = r10000();
    let base = baseline(&m, w);
    let r = cascaded(&m, w, 8, CHUNK_64K, rst);
    let pre = cascaded(&m, w, 8, CHUNK_64K, HelperPolicy::Prefetch);
    println!(
        "R10000 8 procs restructured: speedup {:.2} (paper 1.7); prefetched {:.2} (paper ~1.0)",
        r.overall_speedup_vs(&base),
        pre.overall_speedup_vs(&base)
    );
    let spread = r.loop_speedups_vs(&base);
    println!(
        "R10000 per-loop range: {:.2}..{:.2} (paper: 0.9..4.5)",
        spread.iter().cloned().fold(f64::INFINITY, f64::min),
        spread.iter().cloned().fold(0.0, f64::max)
    );
}

//! Figure 1: the cascaded execution model itself, rendered from the
//! *actual simulated schedule* rather than drawn by hand.
//!
//! (a) Standard execution: one processor runs the sequential section,
//!     the others idle.
//! (b) Cascaded execution: execution phases rotate; each processor's
//!     helper phase (`h`) precedes its execution phase (`E`), with `.`
//!     marking the spin between helper completion and token arrival.
//!
//! The rendered timelines carry the paper's two structural claims by
//! construction (validated programmatically before drawing): exactly one
//! processor executes at any time, and helpers run only in the gaps.

use cascade_bench::{baseline, cascade_cfg, header, parmvr, scale_from_args};
use cascade_core::{run_cascaded, HelperPolicy};
use cascade_mem::machines::pentium_pro;

fn main() {
    let scale = scale_from_args(0.05);
    header(&format!(
        "Figure 1: execution timelines from the simulated schedule (scale {scale})"
    ));
    let p = parmvr(scale);
    // One representative loop (L1, the field gather), 3 processors, a few
    // large chunks so the picture is legible — like the paper's figure.
    let mut w = p.workload.clone();
    w.loops.truncate(1);
    let machine = pentium_pro();

    let base = baseline(&machine, &w);
    println!("(a) standard execution: processor 1 runs the loop alone\n");
    let seq_cycles = base.loops[0].cycles;
    let width = 72usize;
    println!("proc 0 |{}|", "E".repeat(width));
    for pnum in 1..3 {
        println!("proc {pnum} |{}|", " ".repeat(width));
    }
    println!(
        "        0{:>w$}",
        format!("{seq_cycles:.0} cycles"),
        w = width - 1
    );

    let chunk = (w.loops[0].footprint() / 6).max(4096);
    let cfg = cascade_cfg(3, chunk, HelperPolicy::Restructure { hoist: true });
    let cfg = cascade_core::CascadeConfig { calls: 1, ..cfg };
    let r = run_cascaded(&machine, &w, &cfg);
    println!(
        "\n(b) cascaded execution of the same loop, 3 processors, {} chunks\n",
        r.loops[0].chunks
    );
    print!("{}", r.loops[0].timeline.render(width));
    println!(
        "\ncascaded makespan {:.0} cycles vs sequential {:.0}: speedup {:.2}",
        r.loops[0].cycles,
        seq_cycles,
        r.overall_speedup_vs(&base)
    );
}

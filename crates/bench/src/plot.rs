//! Terminal line charts, so the figure binaries can render curve shapes —
//! not just tables — the way the paper's figures do.
//!
//! Output is plain ASCII: a y-scaled grid with one glyph per series, an
//! axis with numeric labels, and a legend. Deterministic and snapshot-
//! testable.

/// One plotted series: a label and its y-values (one per x position).
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// Y-values; must be as long as the x-label list.
    pub values: &'a [f64],
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Render a line chart of `series` over `x_labels`, `height` rows tall.
///
/// The y-axis starts at 0 (speedup charts read honestly) and tops out at
/// the maximum value rounded up. Points that share a cell are shown with
/// the glyph of the first series plotted there.
pub fn line_chart(title: &str, x_labels: &[&str], series: &[Series<'_>], height: usize) -> String {
    assert!(height >= 2, "chart needs at least two rows");
    assert!(!x_labels.is_empty(), "chart needs x positions");
    for s in series {
        assert_eq!(
            s.values.len(),
            x_labels.len(),
            "series '{}' length mismatch ({} values, {} x positions)",
            s.label,
            s.values.len(),
            x_labels.len()
        );
    }
    let max = series
        .iter()
        .flat_map(|s| s.values.iter())
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-9);
    // Round the top of the axis up to one decimal of headroom.
    let top = (max * 1.05 * 10.0).ceil() / 10.0;

    // Column width per x position (at least the label width + 1).
    let col = x_labels.iter().map(|l| l.len()).max().unwrap().max(4) + 1;
    let width = col * x_labels.len();

    // Grid, rows from top (index 0) to bottom.
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (xi, &v) in s.values.iter().enumerate() {
            let frac = (v / top).clamp(0.0, 1.0);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            let c = xi * col + col / 2;
            if grid[row][c] == ' ' {
                grid[row][c] = glyph;
            }
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (ri, row) in grid.iter().enumerate() {
        let yval = top * (1.0 - ri as f64 / (height - 1) as f64);
        let line: String = row.iter().collect();
        out.push_str(&format!("{yval:>6.1} |{}\n", line.trim_end()));
    }
    out.push_str(&format!("{:>6} +{}\n", "", "-".repeat(width)));
    let mut xs = format!("{:>6}  ", "");
    for l in x_labels {
        xs.push_str(&format!("{l:^col$}"));
    }
    out.push_str(xs.trim_end());
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, s)| format!("{} {}", GLYPHS[si % GLYPHS.len()], s.label))
        .collect();
    out.push_str(&format!("{:>8}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_axis_and_legend() {
        let chart = line_chart(
            "speedup vs procs",
            &["2", "4", "8"],
            &[
                Series {
                    label: "restructured",
                    values: &[1.5, 2.0, 2.8],
                },
                Series {
                    label: "prefetched",
                    values: &[1.0, 1.1, 1.1],
                },
            ],
            8,
        );
        assert!(chart.starts_with("speedup vs procs\n"));
        assert!(chart.contains("* restructured"));
        assert!(chart.contains("o prefetched"));
        assert!(chart.contains('+'), "axis corner");
        // The y axis top must cover the max value.
        assert!(chart.lines().nth(1).unwrap().trim_start().starts_with('3'));
    }

    #[test]
    fn monotone_series_renders_monotone_rows() {
        let chart = line_chart(
            "t",
            &["a", "b", "c", "d"],
            &[Series {
                label: "s",
                values: &[1.0, 2.0, 3.0, 4.0],
            }],
            9,
        );
        // Sort glyphs by column: row index must not increase as x advances
        // (larger values sit higher on the chart).
        let mut points: Vec<(usize, usize)> = chart
            .lines()
            .skip(1)
            .take(9)
            .enumerate()
            .flat_map(|(ri, line)| line.match_indices('*').map(move |(ci, _)| (ci, ri)))
            .collect();
        points.sort();
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(
                w[0].1 >= w[1].1,
                "rising values must not fall on the chart: {points:?}"
            );
        }
    }

    #[test]
    fn zero_floor_keeps_ratios_honest() {
        // A value half the max must plot near the middle of the chart.
        let chart = line_chart(
            "t",
            &["a", "b"],
            &[Series {
                label: "s",
                values: &[2.0, 4.0],
            }],
            11,
        );
        let rows: Vec<usize> = chart
            .lines()
            .skip(1)
            .take(11)
            .enumerate()
            .flat_map(|(ri, line)| line.match_indices('*').map(move |_| ri))
            .collect();
        let (high, low) = (rows[1].min(rows[0]), rows[0].max(rows[1]));
        assert!(low > high, "4.0 must be above 2.0");
        assert!(
            (low as i64 - 5).abs() <= 1,
            "2.0 should sit near mid-chart: rows {rows:?}"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        line_chart(
            "t",
            &["a"],
            &[Series {
                label: "s",
                values: &[1.0, 2.0],
            }],
            4,
        );
    }
}

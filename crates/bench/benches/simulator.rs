//! Criterion micro-benchmarks of the simulator substrate: these guard the
//! throughput of the hot paths that every figure-regeneration run leans
//! on (tens of millions of simulated accesses per experiment).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cascade_bench::{cascade_cfg, parmvr, CHUNK_64K};
use cascade_core::{run_cascaded, run_sequential, HelperPolicy};
use cascade_mem::machines::pentium_pro;
use cascade_mem::{Access, Op, Phase, StreamClass, System};

fn bench_cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem-sim");
    g.sample_size(20);
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("sequential_read_stream", |b| {
        b.iter(|| {
            let mut sys = System::new(pentium_pro(), 1);
            let mut total = 0.0;
            for i in 0..n {
                total += sys.access(
                    0,
                    Access {
                        addr: i * 8,
                        bytes: 8,
                        op: Op::Read,
                        class: StreamClass::Affine,
                    },
                    Phase::Execution,
                );
            }
            black_box(total)
        })
    });
    g.bench_function("scattered_write_stream", |b| {
        b.iter(|| {
            let mut sys = System::new(pentium_pro(), 2);
            let mut total = 0.0;
            for i in 0..n {
                let addr = (i.wrapping_mul(2_654_435_761) % (1 << 24)) & !7;
                total += sys.access(
                    (i % 2) as usize,
                    Access {
                        addr,
                        bytes: 8,
                        op: Op::Write,
                        class: StreamClass::Indirect,
                    },
                    Phase::Execution,
                );
            }
            black_box(total)
        })
    });
    g.finish();
}

fn bench_parmvr_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("parmvr-sim");
    g.sample_size(10);
    let p = parmvr(0.02);
    let m = pentium_pro();
    g.bench_function("sequential_baseline", |b| {
        b.iter(|| black_box(run_sequential(&m, &p.workload, 1, true).total_cycles()))
    });
    g.bench_function("cascade_restructured_4p", |b| {
        let cfg = cascade_cfg(4, CHUNK_64K, HelperPolicy::Restructure { hoist: true });
        let cfg = cascade_core::CascadeConfig { calls: 1, ..cfg };
        b.iter(|| black_box(run_cascaded(&m, &p.workload, &cfg).total_cycles()))
    });
    g.finish();
}

criterion_group!(benches, bench_cache_access, bench_parmvr_runs);
criterion_main!(benches);

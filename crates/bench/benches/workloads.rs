//! Criterion benchmarks of workload construction and planning — the parts
//! of a figure run that are not the simulator inner loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cascade_core::ChunkPlan;
use cascade_kernels::suite;
use cascade_trace::{AddressSpace, Arena};
use cascade_wave5::{Parmvr, ParmvrParams};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("build");
    g.sample_size(10);
    g.bench_function("parmvr_scale_0_05", |b| {
        b.iter(|| {
            black_box(Parmvr::build(ParmvrParams {
                scale: 0.05,
                seed: 1,
            }))
        })
    });
    g.bench_function("kernel_suite_64k", |b| {
        b.iter(|| black_box(suite(1 << 16, 1)))
    });
    g.finish();
}

fn bench_planning(c: &mut Criterion) {
    let p = Parmvr::build(ParmvrParams {
        scale: 0.25,
        seed: 1,
    });
    let mut g = c.benchmark_group("plan");
    g.bench_function("chunk_plan_all_loops", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for spec in &p.workload.loops {
                total += ChunkPlan::new(spec, 64 * 1024, 32).num_chunks();
            }
            black_box(total)
        })
    });
    g.finish();
}

fn bench_arena(c: &mut Criterion) {
    let mut space = AddressSpace::new();
    let a = space.alloc("a", 8, 1 << 20);
    let mut arena = Arena::new(&space);
    for i in 0..(1u64 << 20) {
        arena.set_f64(&space, a, i, i as f64);
    }
    let mut g = c.benchmark_group("arena");
    g.throughput(Throughput::Bytes(arena.len() as u64));
    g.bench_function("checksum_8MB", |b| b.iter(|| black_box(arena.checksum())));
    g.finish();
}

criterion_group!(benches, bench_build, bench_planning, bench_arena);
criterion_main!(benches);

//! Criterion micro-benchmarks of the real-thread runtime: the cost of a
//! control transfer on this host (the analogue of the paper's measured
//! 120 / 500 cycle flag transfers), pack/prefetch helper throughput, and
//! end-to-end cascaded execution of the synthetic loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cascade_rt::{run_cascaded, RealKernel, RtPolicy, RunnerConfig, SpecProgram, Token};
use cascade_synth::{Synth, Variant};
use cascade_wave5::{Parmvr, ParmvrParams};

fn bench_token(c: &mut Criterion) {
    let mut g = c.benchmark_group("token");
    g.sample_size(10); // spin/yield heavy on oversubscribed hosts
    g.bench_function("uncontended_transfer", |b| {
        // Single-thread grant/observe cycle: lower bound of the paper's
        // "transfer of control" cost on this host.
        b.iter(|| {
            let t = Token::new();
            for i in 0..1000u64 {
                t.release_to(i + 1);
                black_box(t.wait_for(i + 1));
            }
        })
    });
    g.bench_function("two_thread_pingpong", |b| {
        b.iter(|| {
            let t = Token::new();
            std::thread::scope(|s| {
                for me in 0..2u64 {
                    let t = &t;
                    s.spawn(move || {
                        let mut chunk = me;
                        while chunk < 200 {
                            t.wait_for(chunk);
                            t.release_to(chunk + 1);
                            chunk += 2;
                        }
                    });
                }
            });
        })
    });
    g.finish();
}

fn bench_helpers(c: &mut Criterion) {
    let mut g = c.benchmark_group("helpers");
    let n = 1u64 << 16;
    let s = Synth::build(n, Variant::Dense, 9);
    let prog = SpecProgram::new(s.workload, s.arena).unwrap();
    let k = prog.kernel(0);
    g.throughput(Throughput::Elements(n));
    g.bench_function("prefetch_iter", |b| {
        b.iter(|| {
            for i in 0..n {
                k.prefetch_iter(i);
            }
        })
    });
    g.bench_function("pack_iter", |b| {
        let mut buf = Vec::with_capacity((n * 8) as usize);
        b.iter(|| {
            buf.clear();
            for i in 0..n {
                black_box(k.pack_iter(i, &mut buf));
            }
        })
    });
    g.finish();
}

fn bench_cascade_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("cascade-rt");
    g.sample_size(10);
    let n = 1u64 << 18;
    for policy in [RtPolicy::None, RtPolicy::Prefetch, RtPolicy::Restructure] {
        g.bench_function(format!("synthetic_dense_{}", policy.label()), |b| {
            b.iter(|| {
                let s = Synth::build(n, Variant::Dense, 9);
                let prog = SpecProgram::new(s.workload, s.arena).unwrap();
                let k = prog.kernel(0);
                let cfg = RunnerConfig {
                    nthreads: 2,
                    iters_per_chunk: 8192,
                    policy,
                    poll_batch: 128,
                };
                black_box(run_cascaded(&k, &cfg).chunks)
            })
        });
    }
    g.finish();
}

fn bench_wave5_small(c: &mut Criterion) {
    let mut g = c.benchmark_group("wave5");
    g.sample_size(10);
    // End-to-end miniature PARMVR: all 15 loops cascaded in sequence, the
    // same configuration `bench_suite` snapshots into BENCH_runtime.json.
    g.bench_function("parmvr_x15_small", |b| {
        b.iter(|| {
            let p = Parmvr::build(ParmvrParams {
                scale: 0.02,
                seed: 5,
            });
            let prog = SpecProgram::new(p.workload, p.arena).unwrap();
            let cfg = RunnerConfig {
                nthreads: 2,
                iters_per_chunk: 2048,
                policy: RtPolicy::Restructure,
                poll_batch: 64,
            };
            let mut chunks = 0u64;
            for i in 0..prog.num_loops() {
                let k = prog.kernel(i);
                chunks += run_cascaded(&k, &cfg).chunks;
            }
            black_box(chunks)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_token,
    bench_helpers,
    bench_cascade_end_to_end,
    bench_wave5_small
);
criterion_main!(benches);

//! Deterministic smoke coverage of every experiment binary.
//!
//! Each paper table/figure binary (and each extra experiment) runs at a
//! tiny `CASCADE_SCALE`, must exit 0, and must emit its section header —
//! so a broken experiment fails `cargo test` instead of being discovered
//! the next time someone regenerates `results/`. The scales are chosen to
//! keep the whole suite fast in debug builds; relative shapes (and any
//! internal bitwise assertions the binaries carry) are exercised all the
//! same.

use std::process::Command;

/// Run one experiment binary at `scale`, asserting exit 0, and return its
/// stdout.
fn run_scaled(exe: &str, scale: &str) -> String {
    let out = Command::new(exe)
        .env("CASCADE_SCALE", scale)
        .output()
        .unwrap_or_else(|e| panic!("{exe}: failed to spawn: {e}"));
    assert!(
        out.status.success(),
        "{exe} (scale {scale}) exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).expect("experiment output must be UTF-8")
}

/// Assert the output carries the `header()` banner (title + separator).
fn assert_header(exe: &str, out: &str, title: &str) {
    assert!(
        out.contains(title),
        "{exe}: missing section header '{title}'\n{out}"
    );
    assert!(
        out.contains("===="),
        "{exe}: missing header separator\n{out}"
    );
}

macro_rules! smoke {
    ($test:ident, $bin:literal, $scale:literal, $title:literal $(, $extra:literal)*) => {
        #[test]
        fn $test() {
            let exe = env!(concat!("CARGO_BIN_EXE_", $bin));
            let out = run_scaled(exe, $scale);
            assert_header(exe, &out, $title);
            $(assert!(
                out.contains($extra),
                "{exe}: missing '{}'\n{out}", $extra
            );)*
        }
    };
}

smoke!(
    table1_smoke,
    "table1",
    "1",
    "Table 1:",
    "Pentium Pro",
    "R10000"
);
smoke!(overview_smoke, "overview", "0.005", "Overview", "speedup");
smoke!(
    fig1_smoke,
    "fig1_schedule",
    "0.005",
    "Figure 1: execution timelines"
);
smoke!(
    fig2_smoke,
    "fig2_speedup_procs",
    "0.005",
    "Figure 2: overall PARMVR speedup"
);
smoke!(
    fig3_smoke,
    "fig3_loop_times",
    "0.005",
    "Figure 3: execution time of each PARMVR loop"
);
smoke!(
    fig4_smoke,
    "fig4_l2_misses",
    "0.005",
    "Figure 4: L2 cache misses"
);
smoke!(
    fig5_smoke,
    "fig5_l1_misses",
    "0.005",
    "Figure 5: L1 data cache misses"
);
smoke!(
    fig6_smoke,
    "fig6_chunk_size",
    "0.005",
    "Figure 6: PARMVR speedup vs chunk size"
);
smoke!(
    fig7_smoke,
    "fig7_future",
    "0.002",
    "Figure 7: synthetic-loop speedups"
);
smoke!(
    extra_amdahl_smoke,
    "extra_amdahl",
    "0.005",
    "Extra F: whole-application (Amdahl) projection"
);
smoke!(
    extra_hoist_smoke,
    "extra_hoist_ablation",
    "0.005",
    "Extra D: restructuring with vs without compute hoisting"
);
smoke!(
    extra_jumpout_smoke,
    "extra_jumpout_ablation",
    "0.005",
    "Extra B: jump-out-of-helper ablation"
);
smoke!(
    extra_kernels_smoke,
    "extra_kernels",
    "0.01",
    "Extra G: cascaded execution across kernel classes"
);
smoke!(
    extra_modern_smoke,
    "extra_modern",
    "0.005",
    "Extra I: cascaded execution on a modern"
);
smoke!(
    extra_reuse_smoke,
    "extra_reuse_profile",
    "0.005",
    "Extra H: reuse-distance profile"
);
smoke!(
    extra_runtime_demo_smoke,
    "extra_runtime_demo",
    "0.005",
    "Extra C: real-thread cascaded execution",
    "bitwise identical"
);
smoke!(
    extra_tlb_smoke,
    "extra_tlb_effect",
    "0.005",
    "Extra E: restructuring with a modelled TLB"
);
smoke!(
    extra_unbounded_smoke,
    "extra_unbounded_wave5",
    "0.005",
    "Extra A: unbounded-processor speedups"
);

/// The perf-snapshot pipeline end to end: `bench_suite` emits a snapshot
/// that parses, self-diffs clean, and `bench_diff` catches both a
/// tampered exact counter (exit 1) and a scale mismatch (exit 2).
#[test]
fn bench_suite_and_diff_smoke() {
    let dir = std::env::temp_dir().join("cascade-bench-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("snap.json");
    let snap_s = snap.to_str().unwrap();

    let suite = env!("CARGO_BIN_EXE_bench_suite");
    let out = Command::new(suite)
        .env("CASCADE_SCALE", "0.02")
        .args(["--out", snap_s])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "bench_suite failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Bench suite"), "{stdout}");
    assert!(stdout.contains("exact counters"), "{stdout}");

    let text = std::fs::read_to_string(&snap).unwrap();
    let doc = cascade_bench::json::parse(&text).expect("snapshot must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("cascade-bench-v1")
    );
    for section in ["exact", "timing_ns"] {
        let members = doc.get(section).and_then(|s| s.as_obj()).unwrap();
        assert!(!members.is_empty(), "{section} must not be empty");
    }

    let diff = env!("CARGO_BIN_EXE_bench_diff");
    let ok = Command::new(diff).args([snap_s, snap_s]).output().unwrap();
    assert!(ok.status.success(), "self-diff must pass");

    // Tamper with one exact counter: the diff must fail with exit 1.
    let tampered = dir.join("tampered.json");
    let line = text
        .lines()
        .find(|l| l.contains("wave5.chunks"))
        .expect("snapshot has wave5.chunks");
    let bad = text.replace(line, "    \"wave5.chunks\": 999999999,");
    assert_ne!(bad, text);
    std::fs::write(&tampered, bad).unwrap();
    let fail = Command::new(diff)
        .args([snap_s, tampered.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(fail.status.code(), Some(1), "tampered diff must exit 1");
    assert!(String::from_utf8_lossy(&fail.stdout).contains("CHANGED"));

    // A snapshot at a different scale is not comparable: exit 2.
    let rescaled = dir.join("rescaled.json");
    std::fs::write(
        &rescaled,
        text.replace("\"scale\": 0.02", "\"scale\": 0.04"),
    )
    .unwrap();
    let refuse = Command::new(diff)
        .args([snap_s, rescaled.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(refuse.status.code(), Some(2), "scale mismatch must exit 2");
}

//! The fifteen loops of the synthetic PARMVR (paper §3.1: "PARMVR is
//! called approximately 5000 times and consists of 15 loops").
//!
//! Each loop is a [`LoopSpec`] over the shared [`ParmvrArrays`]. The table
//! in DESIGN.md §4 maps loop numbers to patterns and footprint classes;
//! the mix is chosen to reproduce the paper's population: indirect gathers
//! and scatters (the reason the compiler cannot parallelize the mover),
//! streaming pushes, a conflict-prone multi-stream sweep, strided sweeps,
//! reductions, and small loops where cascading barely pays.

use cascade_trace::{LoopSpec, Mode, Pattern, StreamRef};

use crate::arrays::ParmvrArrays;

fn seq() -> Pattern {
    Pattern::Affine { base: 0, stride: 1 }
}

fn rd(
    name: &'static str,
    array: cascade_trace::ArrayId,
    pattern: Pattern,
    hoistable: bool,
) -> StreamRef {
    StreamRef {
        name,
        array,
        pattern,
        mode: Mode::Read,
        bytes: 8,
        hoistable,
    }
}

fn wr(name: &'static str, array: cascade_trace::ArrayId, pattern: Pattern) -> StreamRef {
    StreamRef {
        name,
        array,
        pattern,
        mode: Mode::Write,
        bytes: 8,
        hoistable: false,
    }
}

fn rmw(name: &'static str, array: cascade_trace::ArrayId, pattern: Pattern) -> StreamRef {
    StreamRef {
        name,
        array,
        pattern,
        mode: Mode::Modify,
        bytes: 8,
        hoistable: false,
    }
}

fn gather(index: cascade_trace::ArrayId) -> Pattern {
    Pattern::Indirect {
        index,
        ibase: 0,
        istride: 1,
    }
}

/// Build all fifteen loops, in PARMVR order.
pub fn build_loops(a: &ParmvrArrays) -> Vec<LoopSpec> {
    let d = a.dims;
    vec![
        // L1: field gather at particle positions: t1(i) = ex(ij(i)).
        LoopSpec {
            name: "L1 field gather t1(i)=ex(ij(i))".into(),
            iters: d.np,
            refs: vec![
                rd("ex(ij(i))", a.ex, gather(a.ij), false),
                wr("t1(i)", a.t1, seq()),
            ],
            compute: 30.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        },
        // L2: velocity push: pvx(i) += pq(i) * t1(i) * dt.
        LoopSpec {
            name: "L2 velocity push pvx(i)+=pq(i)*t1(i)*dt".into(),
            iters: d.np,
            refs: vec![
                rd("pq(i)", a.pq, seq(), true),
                rd("t1(i)", a.t1, seq(), true),
                rmw("pvx(i)", a.pvx, seq()),
            ],
            compute: 50.0,
            hoistable_compute: 12.0,
            hoist_result_bytes: 8,
        },
        // L3: position push: px(i) += pvx(i) * dt.
        LoopSpec {
            name: "L3 position push px(i)+=pvx(i)*dt".into(),
            iters: d.np,
            refs: vec![rd("pvx(i)", a.pvx, seq(), true), rmw("px(i)", a.px, seq())],
            compute: 60.0,
            hoistable_compute: 10.0,
            hoist_result_bytes: 8,
        },
        // L4: periodic boundary wrap: px(i) = wrap(px(i)). Nothing is
        // read-only, so restructuring has nothing to pack; the paper's
        // "maximum slowdown of 0.9" class.
        LoopSpec {
            name: "L4 boundary wrap px(i)=wrap(px(i))".into(),
            iters: d.np,
            refs: vec![rmw("px(i)", a.px, seq())],
            compute: 40.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        },
        // L5: charge deposition scatter-add: rho(ij(i)) += pq(i)*w.
        LoopSpec {
            name: "L5 charge deposition rho(ij(i))+=pq(i)*w".into(),
            iters: d.np,
            refs: vec![
                rd("pq(i)", a.pq, seq(), true),
                rmw("rho(ij(i))", a.rho, gather(a.ij)),
            ],
            compute: 45.0,
            hoistable_compute: 15.0,
            hoist_result_bytes: 8,
        },
        // L6: field update from two aligned streams:
        // phi(i) = c1*ex(i) + c2*rho(i). Three 1MB-aligned streams: fits
        // the PPro's 4-way L2, thrashes the R10000's 2-way L2.
        LoopSpec {
            name: "L6 field update phi(i)=c1*ex(i)+c2*rho(i)".into(),
            iters: d.ng,
            refs: vec![
                rd("ex(i)", a.ex, seq(), true),
                rd("rho(i)", a.rho, seq(), true),
                wr("phi(i)", a.phi, seq()),
            ],
            compute: 45.0,
            hoistable_compute: 25.0,
            hoist_result_bytes: 8,
        },
        // L7: compute-heavy gather (hoisting showcase):
        // t2(i) = f(ex(ijs(i)), pq(i)) with expensive f.
        LoopSpec {
            name: "L7 compute-heavy gather t2(i)=f(ex(ijs(i)),pq(i))".into(),
            iters: d.np,
            refs: vec![
                rd("ex(ijs(i))", a.ex, gather(a.ijs), true),
                rd("pq(i)", a.pq, seq(), true),
                wr("t2(i)", a.t2, seq()),
            ],
            compute: 120.0,
            hoistable_compute: 95.0,
            hoist_result_bytes: 8,
        },
        // L8: kinetic energy reduction: e += pvx(i)^2 (read-only loop).
        LoopSpec {
            name: "L8 energy reduction e+=pvx(i)^2".into(),
            iters: d.np,
            refs: vec![rd("pvx(i)", a.pvx, seq(), true)],
            compute: 35.0,
            hoistable_compute: 5.0,
            hoist_result_bytes: 8,
        },
        // L9: conflict-prone 4-stream sweep over the 1MB-aligned group:
        // f1(i) = f2(i) + f3(i)*f4(i).
        LoopSpec {
            name: "L9 aliased sweep f1(i)=f2(i)+f3(i)*f4(i)".into(),
            iters: d.nf,
            refs: vec![
                rd("f2(i)", a.f2, seq(), true),
                rd("f3(i)", a.f3, seq(), true),
                rd("f4(i)", a.f4, seq(), true),
                wr("f1(i)", a.f1, seq()),
            ],
            compute: 45.0,
            hoistable_compute: 25.0,
            hoist_result_bytes: 8,
        },
        // L10: small gather: s1(i) = s2(idx_s(i)). Fits in L2; cascading
        // mostly adds transfer overhead here.
        LoopSpec {
            name: "L10 small gather s1(i)=s2(idx(i))".into(),
            iters: d.ns,
            refs: vec![
                rd("s2(idx(i))", a.s2, gather(a.idx_s), false),
                wr("s1(i)", a.s1, seq()),
            ],
            compute: 25.0,
            hoistable_compute: 0.0,
            hoist_result_bytes: 0,
        },
        // L11: gather + scatter mix: rho(ij(i)) += ex(ijs(i)).
        LoopSpec {
            name: "L11 gather-scatter rho(ij(i))+=ex(ijs(i))".into(),
            iters: d.np,
            refs: vec![
                rd("ex(ijs(i))", a.ex, gather(a.ijs), true),
                rmw("rho(ij(i))", a.rho, gather(a.ij)),
            ],
            compute: 45.0,
            hoistable_compute: 10.0,
            hoist_result_bytes: 8,
        },
        // L12: strided sweep with poor spatial locality over three aligned
        // streams: t1(i) = phi(8i) + f1(8i)*rho(8i).
        LoopSpec {
            name: "L12 strided sweep t1(i)=phi(8i)+f1(8i)*rho(8i)".into(),
            iters: d.nf / 8,
            refs: vec![
                rd(
                    "phi(8i)",
                    a.phi,
                    Pattern::Affine { base: 0, stride: 8 },
                    true,
                ),
                rd("f1(8i)", a.f1, Pattern::Affine { base: 0, stride: 8 }, true),
                rd(
                    "rho(8i)",
                    a.rho,
                    Pattern::Affine { base: 0, stride: 8 },
                    true,
                ),
                wr("t1(i)", a.t1, seq()),
            ],
            compute: 25.0,
            hoistable_compute: 6.0,
            hoist_result_bytes: 8,
        },
        // L13: the huge triad over the big pair: b2(i) = b1(i)*s + b2(i).
        LoopSpec {
            name: "L13 huge triad b2(i)=b1(i)*s+b2(i)".into(),
            iters: d.nbig,
            refs: vec![rd("b1(i)", a.b1, seq(), true), rmw("b2(i)", a.b2, seq())],
            compute: 30.0,
            hoistable_compute: 5.0,
            hoist_result_bytes: 8,
        },
        // L14: small conditional filter: s2(i) = g(s1(i)).
        LoopSpec {
            name: "L14 small filter s2(i)=g(s1(i))".into(),
            iters: d.ns,
            refs: vec![rd("s1(i)", a.s1, seq(), true), wr("s2(i)", a.s2, seq())],
            compute: 40.0,
            hoistable_compute: 10.0,
            hoist_result_bytes: 8,
        },
        // L15: permuted round trip: px(ij2(i)) = px(ij2(i))*c + t2(i).
        LoopSpec {
            name: "L15 permuted update px(ij2(i))=px(ij2(i))*c+t2(i)".into(),
            iters: d.np,
            refs: vec![
                rd("t2(i)", a.t2, seq(), true),
                rmw("px(ij2(i))", a.px, gather(a.ij2)),
            ],
            compute: 45.0,
            hoistable_compute: 10.0,
            hoist_result_bytes: 8,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrays::{Dims, ParmvrArrays};
    use cascade_trace::AddressSpace;

    fn loops_at(scale: f64) -> Vec<LoopSpec> {
        let mut space = AddressSpace::new();
        let a = ParmvrArrays::allocate(&mut space, Dims::scaled(scale));
        build_loops(&a)
    }

    #[test]
    fn there_are_fifteen_loops() {
        assert_eq!(loops_at(0.01).len(), 15);
    }

    #[test]
    fn all_loops_validate() {
        for l in loops_at(0.01) {
            l.validate();
        }
    }

    #[test]
    fn footprints_span_the_paper_range() {
        // Paper §3.1: "the amount of data accessed by each loop ranges
        // from 256KB to 17MB" in the enlarged problem.
        let loops = loops_at(1.0);
        let min = loops.iter().map(|l| l.footprint()).min().unwrap();
        let max = loops.iter().map(|l| l.footprint()).max().unwrap();
        assert!(min >= 200 * 1024, "smallest loop {min} bytes");
        assert!(min <= 512 * 1024, "smallest loop {min} bytes");
        assert!(max >= 17 * 1024 * 1024, "largest loop {max} bytes");
        assert!(max <= 24 * 1024 * 1024, "largest loop {max} bytes");
    }

    #[test]
    fn population_mix_matches_design() {
        let loops = loops_at(0.01);
        let gathers = loops.iter().filter(|l| l.has_indirection()).count();
        assert!(
            gathers >= 5,
            "PIC movers are gather/scatter heavy: {gathers}"
        );
        let hoistable = loops.iter().filter(|l| l.hoistable_compute > 0.0).count();
        assert!(
            hoistable >= 10,
            "most loops have read-only-only work: {hoistable}"
        );
        // L4 must be the no-read-only loop (the slowdown candidate).
        assert_eq!(loops[3].packed_bytes_per_iter(true), 0);
    }

    #[test]
    fn loop_names_are_numbered_in_order() {
        for (i, l) in loops_at(0.01).iter().enumerate() {
            assert!(
                l.name.starts_with(&format!("L{} ", i + 1)),
                "loop {} misnamed: {}",
                i + 1,
                l.name
            );
        }
    }
}

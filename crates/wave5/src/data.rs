//! Deterministic (seeded) generation of PARMVR's data: index-array
//! contents and initial floating-point state.
//!
//! Three index populations drive the workload's memory behaviour:
//!
//! * `ij` — particle -> cell, uniformly random: the hard gather/scatter
//!   (particles far from sorted, as after many timesteps);
//! * `ijs` — nearly sorted with bounded jitter: the easier gather (as just
//!   after a particle sort), retaining some spatial locality;
//! * `ij2` — a random permutation of the particles: every element touched
//!   exactly once, in cache-hostile order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cascade_trace::{AddressSpace, Arena, ArrayId, IndexStore};

use crate::arrays::ParmvrArrays;

/// Jitter radius of the nearly-sorted map (index-array elements).
const SORT_JITTER: i64 = 16;

/// Build `ij` (uniform random cells), `ijs` (nearly sorted cells) and
/// `ij2` (particle permutation) plus the small map `idx_s`.
pub fn build_indices(a: &ParmvrArrays, seed: u64) -> IndexStore {
    let d = a.dims;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = IndexStore::new();

    // Uniform particle -> cell map.
    let ij: Vec<u32> = (0..d.np).map(|_| rng.gen_range(0..d.ng) as u32).collect();
    store.set(a.ij, ij);

    // Nearly sorted map: monotone ramp over cells plus bounded jitter.
    let ijs: Vec<u32> = (0..d.np)
        .map(|i| {
            let ideal = (i as i64 * d.ng as i64) / d.np as i64;
            let jitter = rng.gen_range(-SORT_JITTER..=SORT_JITTER);
            (ideal + jitter).clamp(0, d.ng as i64 - 1) as u32
        })
        .collect();
    store.set(a.ijs, ijs);

    // Random permutation of the particles (Fisher-Yates).
    let mut ij2: Vec<u32> = (0..d.np as u32).collect();
    for i in (1..ij2.len()).rev() {
        let j = rng.gen_range(0..=i);
        ij2.swap(i, j);
    }
    store.set(a.ij2, ij2);

    // Small map: uniform within the small arrays.
    let idx_s: Vec<u32> = (0..d.ns).map(|_| rng.gen_range(0..d.ns) as u32).collect();
    store.set(a.idx_s, idx_s);

    store
}

/// Fill every floating-point array with deterministic values in (0, 1) and
/// install the index contents, producing real backing storage for the
/// runtime.
pub fn build_arena(space: &AddressSpace, a: &ParmvrArrays, index: &IndexStore, seed: u64) -> Arena {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00f1_0a7d_a7a5_eed5);
    let mut arena = Arena::new(space);
    let f64_arrays: [ArrayId; 13] = [
        a.px, a.pvx, a.pq, a.ex, a.rho, a.phi, a.f1, a.f2, a.f3, a.f4, a.t1, a.t2, a.b1,
    ];
    for id in f64_arrays {
        let len = space.array(id).len;
        for i in 0..len {
            arena.set_f64(space, id, i, rng.gen_range(0.001..1.0));
        }
    }
    // b2, s1, s2 start zeroed (pure outputs / filters).
    for id in [a.b2, a.s1, a.s2] {
        let len = space.array(id).len;
        for i in 0..len {
            arena.set_f64(space, id, i, 0.0);
        }
    }
    arena.install_indices(space, index);
    arena
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrays::{Dims, ParmvrArrays};

    fn setup() -> (AddressSpace, ParmvrArrays) {
        let mut space = AddressSpace::new();
        let a = ParmvrArrays::allocate(&mut space, Dims::scaled(0.005));
        (space, a)
    }

    #[test]
    fn indices_are_in_range() {
        let (_, a) = setup();
        let store = build_indices(&a, 7);
        let d = a.dims;
        for i in 0..d.np {
            assert!((store.get(a.ij, i) as u64) < d.ng);
            assert!((store.get(a.ijs, i) as u64) < d.ng);
            assert!((store.get(a.ij2, i) as u64) < d.np);
        }
        for i in 0..d.ns {
            assert!((store.get(a.idx_s, i) as u64) < d.ns);
        }
    }

    #[test]
    fn ij2_is_a_permutation() {
        let (_, a) = setup();
        let store = build_indices(&a, 7);
        let mut seen = vec![false; a.dims.np as usize];
        for i in 0..a.dims.np {
            let v = store.get(a.ij2, i) as usize;
            assert!(!seen[v], "duplicate {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ijs_is_nearly_sorted() {
        let (_, a) = setup();
        let store = build_indices(&a, 7);
        let d = a.dims;
        for i in 0..d.np {
            let ideal = (i as i64 * d.ng as i64) / d.np as i64;
            let got = store.get(a.ijs, i) as i64;
            assert!((got - ideal).abs() <= SORT_JITTER, "jitter exceeded at {i}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (space, a) = setup();
        let s1 = build_indices(&a, 42);
        let s2 = build_indices(&a, 42);
        for i in 0..a.dims.np {
            assert_eq!(s1.get(a.ij, i), s2.get(a.ij, i));
        }
        let ar1 = build_arena(&space, &a, &s1, 42);
        let ar2 = build_arena(&space, &a, &s2, 42);
        assert_eq!(ar1.checksum(), ar2.checksum());
    }

    #[test]
    fn different_seeds_differ() {
        let (space, a) = setup();
        let s1 = build_indices(&a, 1);
        let s2 = build_indices(&a, 2);
        let ar1 = build_arena(&space, &a, &s1, 1);
        let ar2 = build_arena(&space, &a, &s2, 2);
        assert_ne!(ar1.checksum(), ar2.checksum());
    }

    #[test]
    fn arena_has_indices_installed() {
        let (space, a) = setup();
        let store = build_indices(&a, 3);
        let arena = build_arena(&space, &a, &store, 3);
        for i in (0..a.dims.np).step_by(97) {
            assert_eq!(arena.get_u32(&space, a.ij, i), store.get(a.ij, i));
        }
    }
}

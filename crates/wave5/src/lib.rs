//! # cascade-wave5 — the synthetic PARMVR workload
//!
//! The paper evaluates cascaded execution on PARMVR, the particle-mover
//! subroutine that dominates (≈50%) the runtime of `wave5` from SPEC95fp.
//! SPEC sources are proprietary, so this crate provides a *synthetic
//! PARMVR*: fifteen loops of a 1-D particle-in-cell mover whose population
//! matches everything the paper states about the original — loop count,
//! enlarged per-loop footprints (≈256KB to ≈17MB), shared arrays across
//! loops, indirect gathers/scatters that defeat parallelization, and a
//! conflict-prone multi-stream sweep. See DESIGN.md for the full
//! substitution argument and the per-loop table.
//!
//! ```
//! use cascade_wave5::{Parmvr, ParmvrParams};
//!
//! // A miniature PARMVR for quick experiments (scale 1.0 = paper-sized).
//! let parmvr = Parmvr::build(ParmvrParams { scale: 0.01, seed: 1 });
//! assert_eq!(parmvr.workload.loops.len(), 15);
//! ```

#![warn(missing_docs)]

pub mod arrays;
pub mod data;
pub mod loops;

pub use arrays::{Dims, ParmvrArrays, CONFLICT_ALIGN};

use cascade_trace::{AddressSpace, Arena, Workload};

/// Parameters of a PARMVR instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParmvrParams {
    /// Size multiplier; 1.0 reproduces the paper's enlarged problem.
    pub scale: f64,
    /// Seed for index and data generation.
    pub seed: u64,
}

impl Default for ParmvrParams {
    fn default() -> Self {
        ParmvrParams {
            scale: 1.0,
            seed: 0x5EED_CA5C,
        }
    }
}

/// A fully built PARMVR instance: the simulator-facing [`Workload`], the
/// runtime-facing [`Arena`] of real data, and the array handles.
#[derive(Debug, Clone)]
pub struct Parmvr {
    /// Workload description (address space, index contents, 15 loops).
    pub workload: Workload,
    /// Real backing data matching the workload's address space.
    pub arena: Arena,
    /// Array handles for inspection.
    pub arrays: ParmvrArrays,
    /// Parameters it was built with.
    pub params: ParmvrParams,
}

impl Parmvr {
    /// Build a PARMVR instance deterministically from `params`.
    pub fn build(params: ParmvrParams) -> Self {
        let dims = Dims::scaled(params.scale);
        let mut space = AddressSpace::new();
        let arrays = ParmvrArrays::allocate(&mut space, dims);
        let index = data::build_indices(&arrays, params.seed);
        let arena = data::build_arena(&space, &arrays, &index, params.seed);
        let loops = loops::build_loops(&arrays);
        let workload = Workload {
            space,
            index,
            loops,
        };
        workload.validate();
        Parmvr {
            workload,
            arena,
            arrays,
            params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_valid_workload() {
        let p = Parmvr::build(ParmvrParams {
            scale: 0.005,
            seed: 9,
        });
        p.workload.validate();
        assert_eq!(p.workload.loops.len(), 15);
        assert_eq!(p.arena.len() as u64, p.workload.space.extent());
    }

    #[test]
    fn build_is_deterministic() {
        let a = Parmvr::build(ParmvrParams {
            scale: 0.005,
            seed: 9,
        });
        let b = Parmvr::build(ParmvrParams {
            scale: 0.005,
            seed: 9,
        });
        assert_eq!(a.arena.checksum(), b.arena.checksum());
        assert_eq!(a.workload.space.extent(), b.workload.space.extent());
    }

    #[test]
    fn full_scale_footprint_matches_paper_class() {
        // The paper's enlarged PARMVR touches tens of MB per call; make
        // sure the default scale actually allocates that much.
        let dims = Dims::scaled(1.0);
        let mut space = AddressSpace::new();
        let _ = ParmvrArrays::allocate(&mut space, dims);
        let mb = space.extent() as f64 / (1024.0 * 1024.0);
        assert!(mb > 50.0 && mb < 120.0, "total allocation {mb:.1} MB");
    }
}

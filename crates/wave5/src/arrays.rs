//! The array inventory of the synthetic PARMVR subroutine.
//!
//! wave5 is a plasma (particle-in-cell) simulation; PARMVR is its particle
//! mover. The arrays here are the PIC state a 1-D mover needs: per-particle
//! state, per-cell field state, particle-to-cell index maps, scratch
//! vectors, and deliberate placement properties:
//!
//! * the core f64 arrays (particles, fields, and the conflict group
//!   `f1..f4`) are aligned to 1MB boundaries — the placement that
//!   power-of-two-sized Fortran COMMON arrays naturally land on — so they
//!   contend for the same cache sets (every modelled way size divides
//!   1MB). Loops referencing two such streams fit both machines' L2s;
//!   loops referencing three or four fit the Pentium Pro's 4-way L2 but
//!   thrash the R10000's 2-way L2 — the associativity contrast of §3.3,
//!   and the conflict misses that restructuring eliminates;
//! * the scratch vectors `t1`/`t2` and index maps are packed naturally
//!   (no alignment), so gather targets and mixed loops see ordinary
//!   placement;
//! * the *big pair* `b1/b2` realizes the paper's largest enlarged loop
//!   footprint (~17MB).

use cascade_trace::{AddressSpace, ArrayId};

/// Sizing knobs of the workload, all derived from one scale factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dims {
    /// Number of particles.
    pub np: u64,
    /// Number of grid cells.
    pub ng: u64,
    /// Length of each conflict-group array.
    pub nf: u64,
    /// Length of the small arrays (the paper's 256KB-class loops).
    pub ns: u64,
    /// Length of the big pair (the paper's 17MB-class loop).
    pub nbig: u64,
}

impl Dims {
    /// Paper-like dimensions scaled by `scale` (1.0 reproduces the
    /// "enlarged problem" of §3.1: per-loop footprints from ~256KB to
    /// ~17MB). Every dimension is floored at 1024 so that tiny scales used
    /// in tests remain well-formed.
    pub fn scaled(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let s = |base: u64| -> u64 { ((base as f64 * scale) as u64).max(1024) };
        Dims {
            np: s(512 * 1024),
            ng: s(512 * 1024),
            nf: s(192 * 1024),
            ns: s(16 * 1024),
            nbig: s(1_100 * 1024),
        }
    }
}

/// All PARMVR arrays, with their [`ArrayId`]s in one allocated space.
#[derive(Debug, Clone)]
pub struct ParmvrArrays {
    /// Dimensions used for allocation.
    pub dims: Dims,
    /// Particle positions (f64, `np`).
    pub px: ArrayId,
    /// Particle velocities (f64, `np`).
    pub pvx: ArrayId,
    /// Particle charge/mass ratios (f64, `np`).
    pub pq: ArrayId,
    /// Particle -> cell index, unsorted/random (u32, `np`).
    pub ij: ArrayId,
    /// Particle -> cell index, nearly sorted (u32, `np`).
    pub ijs: ArrayId,
    /// Particle permutation (u32, `np`).
    pub ij2: ArrayId,
    /// Electric field per cell (f64, `ng`).
    pub ex: ArrayId,
    /// Charge density per cell (f64, `ng`).
    pub rho: ArrayId,
    /// Potential per cell (f64, `ng`).
    pub phi: ArrayId,
    /// Conflict group, 1MB-aligned (f64, `nf` each).
    pub f1: ArrayId,
    /// Conflict group member 2.
    pub f2: ArrayId,
    /// Conflict group member 3.
    pub f3: ArrayId,
    /// Conflict group member 4.
    pub f4: ArrayId,
    /// Scratch vector 1 (f64, `np`).
    pub t1: ArrayId,
    /// Scratch vector 2 (f64, `np`).
    pub t2: ArrayId,
    /// Small vector 1 (f64, `ns`).
    pub s1: ArrayId,
    /// Small vector 2 (f64, `ns`).
    pub s2: ArrayId,
    /// Small index vector (u32, `ns`).
    pub idx_s: ArrayId,
    /// Big pair member 1 (f64, `nbig`).
    pub b1: ArrayId,
    /// Big pair member 2 (f64, `nbig`).
    pub b2: ArrayId,
}

/// Alignment of the conflict group: a multiple of every modelled cache's
/// way size (PPro L2 way 128KB, R10000 L2 way 1MB, both L1 ways).
pub const CONFLICT_ALIGN: u64 = 1 << 20;

impl ParmvrArrays {
    /// Allocate every array into `space`.
    pub fn allocate(space: &mut AddressSpace, dims: Dims) -> Self {
        ParmvrArrays {
            dims,
            px: space.alloc_aligned("px", 8, dims.np, CONFLICT_ALIGN),
            pvx: space.alloc_aligned("pvx", 8, dims.np, CONFLICT_ALIGN),
            pq: space.alloc_aligned("pq", 8, dims.np, CONFLICT_ALIGN),
            ij: space.alloc("ij", 4, dims.np),
            ijs: space.alloc("ijs", 4, dims.np),
            ij2: space.alloc("ij2", 4, dims.np),
            ex: space.alloc_aligned("ex", 8, dims.ng, CONFLICT_ALIGN),
            rho: space.alloc_aligned("rho", 8, dims.ng, CONFLICT_ALIGN),
            phi: space.alloc_aligned("phi", 8, dims.ng, CONFLICT_ALIGN),
            f1: space.alloc_aligned("f1", 8, dims.nf, CONFLICT_ALIGN),
            f2: space.alloc_aligned("f2", 8, dims.nf, CONFLICT_ALIGN),
            f3: space.alloc_aligned("f3", 8, dims.nf, CONFLICT_ALIGN),
            f4: space.alloc_aligned("f4", 8, dims.nf, CONFLICT_ALIGN),
            t1: space.alloc_aligned("t1", 8, dims.np, CONFLICT_ALIGN),
            t2: space.alloc_aligned("t2", 8, dims.np, CONFLICT_ALIGN),
            s1: space.alloc("s1", 8, dims.ns),
            s2: space.alloc("s2", 8, dims.ns),
            idx_s: space.alloc("idx_s", 4, dims.ns),
            b1: space.alloc("b1", 8, dims.nbig),
            b2: space.alloc("b2", 8, dims.nbig),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_dims_are_proportional() {
        let full = Dims::scaled(1.0);
        let half = Dims::scaled(0.5);
        assert_eq!(full.np, 512 * 1024);
        assert_eq!(half.np, 256 * 1024);
        assert_eq!(full.nbig, 1_100 * 1024);
    }

    #[test]
    fn tiny_scales_are_floored() {
        let tiny = Dims::scaled(1e-6);
        assert_eq!(tiny.np, 1024);
        assert_eq!(tiny.ns, 1024);
    }

    #[test]
    fn conflict_group_shares_way_residue() {
        let mut space = AddressSpace::new();
        let a = ParmvrArrays::allocate(&mut space, Dims::scaled(0.01));
        for id in [a.f1, a.f2, a.f3, a.f4] {
            assert_eq!(space.array(id).base % CONFLICT_ALIGN, 0);
        }
        // The paper's effect requires same residue modulo the *way size* of
        // each machine; 128KB and 1MB both divide the alignment.
        assert_eq!(CONFLICT_ALIGN % (128 * 1024), 0);
        assert_eq!(CONFLICT_ALIGN % (1024 * 1024), 0);
    }

    #[test]
    fn paper_footprint_range_is_covered() {
        let d = Dims::scaled(1.0);
        // Smallest loop class ~256KB (two small arrays + index).
        let small = d.ns * (8 + 8 + 4);
        assert!(small >= 256 * 1024, "small loop class: {small} bytes");
        // Largest loop class ~17MB (big pair).
        let big = d.nbig * 16;
        assert!(big >= 17 * 1024 * 1024, "big loop class: {big} bytes");
    }
}

//! Targeted tests of the paper's §3.3 associativity story: the same PARMVR
//! loops, the same addresses — conflict behaviour must differ between the
//! Pentium Pro's 4-way L2 and the R10000's 2-way L2 exactly as the paper
//! describes.

use cascade_core::run_sequential;
use cascade_mem::machines::{pentium_pro, r10000};
use cascade_wave5::{Parmvr, ParmvrParams};

fn parmvr() -> Parmvr {
    Parmvr::build(ParmvrParams {
        scale: 0.05,
        seed: 8,
    })
}

/// Index of a loop by its name prefix.
fn loop_idx(p: &Parmvr, prefix: &str) -> usize {
    p.workload
        .loops
        .iter()
        .position(|l| l.name.starts_with(prefix))
        .unwrap_or_else(|| panic!("no loop named {prefix}*"))
}

#[test]
fn l9_thrashes_the_two_way_l2_but_not_the_four_way() {
    // L9 streams four 1MB-aligned arrays. 4 streams <= 4 ways on the PPro:
    // only compulsory misses. 4 streams > 2 ways on the R10000: every
    // access re-misses.
    let p = parmvr();
    let i9 = loop_idx(&p, "L9");
    let iters = p.workload.loops[i9].iters;

    let ppro = run_sequential(&pentium_pro(), &p.workload, 1, true);
    // PPro: 32B lines, 4 streams x 8B -> one miss per line per stream =
    // 4 * iters / 4 = iters compulsory L2 misses (plus noise).
    let ppro_l2 = ppro.loops[i9].exec.l2_misses;
    assert!(
        (ppro_l2 as f64) < 1.3 * iters as f64,
        "PPro L9 should be compulsory-dominated: {ppro_l2} vs {iters} iters"
    );

    let r10k = run_sequential(&r10000(), &p.workload, 1, true);
    // R10000: full thrash = ~4 misses per iteration (3 reads + 1 write).
    let r10k_l2 = r10k.loops[i9].exec.l2_misses;
    assert!(
        (r10k_l2 as f64) > 3.0 * iters as f64,
        "R10000 L9 must thrash its 2-way L2: {r10k_l2} vs {iters} iters"
    );
}

#[test]
fn two_aligned_streams_fit_both_machines() {
    // L3 (pvx, px: two aligned streams) must not thrash either machine.
    let p = parmvr();
    let i3 = loop_idx(&p, "L3");
    let iters = p.workload.loops[i3].iters;
    for machine in [pentium_pro(), r10000()] {
        let r = run_sequential(&machine, &p.workload, 1, true);
        let per_iter = r.loops[i3].exec.l2_misses as f64 / iters as f64;
        // Compulsory only: 2 streams x 8B / line bytes misses per iteration.
        let compulsory = 2.0 * 8.0 / machine.l2.line as f64;
        assert!(
            per_iter < compulsory * 1.5 + 0.05,
            "{}: L3 should not conflict: {per_iter:.3} misses/iter vs compulsory {compulsory:.3}",
            machine.name
        );
    }
}

#[test]
fn restructuring_eliminates_the_conflict_misses_prefetching_cannot() {
    // The heart of the paper's Figure 4 narrative, checked on the R10000:
    // prefetching does not reduce the conflict-dominated loops' misses,
    // restructuring does.
    use cascade_core::{run_cascaded, CascadeConfig, HelperPolicy};
    let p = parmvr();
    let i9 = loop_idx(&p, "L9");
    let m = r10000();
    let base = run_sequential(&m, &p.workload, 1, true);
    let mk = |policy| CascadeConfig {
        nprocs: 4,
        policy,
        calls: 1,
        ..CascadeConfig::default()
    };
    let pre = run_cascaded(&m, &p.workload, &mk(HelperPolicy::Prefetch));
    let rst = run_cascaded(
        &m,
        &p.workload,
        &mk(HelperPolicy::Restructure { hoist: true }),
    );
    let b = base.loops[i9].exec.l2_misses as f64;
    let pf = pre.loops[i9].exec.l2_misses as f64;
    let rs = rst.loops[i9].exec.l2_misses as f64;
    assert!(
        pf > 0.8 * b,
        "prefetching cannot remove conflict misses on the 2-way L2: {pf} vs baseline {b}"
    );
    assert!(
        rs < 0.5 * b,
        "restructuring must remove most of them: {rs} vs baseline {b}"
    );
}

#[test]
fn l4_gains_nothing_from_restructuring() {
    // L4 (boundary wrap) reads nothing read-only: restructured execution
    // degenerates to prefetching the write target.
    use cascade_core::{run_cascaded, CascadeConfig, HelperPolicy};
    let p = parmvr();
    let i4 = loop_idx(&p, "L4");
    let m = pentium_pro();
    let mk = |policy| CascadeConfig {
        nprocs: 4,
        policy,
        calls: 1,
        ..CascadeConfig::default()
    };
    let pre = run_cascaded(&m, &p.workload, &mk(HelperPolicy::Prefetch));
    let rst = run_cascaded(
        &m,
        &p.workload,
        &mk(HelperPolicy::Restructure { hoist: true }),
    );
    let ratio = rst.loops[i4].cycles / pre.loops[i4].cycles;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "restructuring L4 should be equivalent to prefetching it: ratio {ratio:.3}"
    );
}

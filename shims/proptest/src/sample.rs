//! Sampling helpers (`prop::sample::Index`).

/// A length-agnostic index: generated once, projected onto any collection
/// length with [`Index::index`].
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    pub(crate) fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Project onto a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; other cases are re-drawn (up to
    /// an internal retry bound, then rejected to the runner).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..100 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 100 candidates in a row",
            self.whence
        );
    }
}

/// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
pub struct Union<V> {
    alternatives: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty alternative list.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { alternatives }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = (rng.next_u64() % self.alternatives.len() as u64) as usize;
        self.alternatives[pick].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

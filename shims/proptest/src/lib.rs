//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest's API its property tests use: the
//! [`proptest!`] macro, range/tuple/[`Just`]/[`prop_oneof!`] strategies,
//! [`collection::vec`] / [`collection::btree_set`], `prop_map` /
//! `prop_filter`, `any::<T>()`, and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (every generated
//!   binding is `Debug`-formatted into the panic message) but is not
//!   minimized.
//! * **Deterministic seeding.** Every test function runs its cases from a
//!   fixed seed, so failures reproduce exactly under `cargo test`.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` alias namespace (`prop::sample::Index` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, v in proptest::collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each test function of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        // The `#[test]` attribute arrives as one of the forwarded metas.
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|__rng| {
                $(
                    let __value = $crate::strategy::Strategy::generate(&($strat), __rng);
                    let __repr = format!("{} = {:?}", stringify!($arg), __value);
                    __rng.record_binding(__repr);
                    let $arg = __value;
                )+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property: failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*))));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*))));
        }
    }};
}

/// Discard the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let alternatives: ::std::vec::Vec<::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(alternatives)
    }};
}

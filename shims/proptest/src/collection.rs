//! Collection strategies (`proptest::collection::vec`, `btree_set`).

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec<S::Value>` with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + (rng.next_u64() % span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
/// Element collisions are re-drawn (bounded), so the requested minimum
/// size is honoured whenever the element domain is large enough.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty size range");
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let want = self.size.start + (rng.next_u64() % span) as usize;
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < want && attempts < want * 100 + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

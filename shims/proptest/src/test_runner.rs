//! The case runner: configuration, RNG, and failure reporting.

/// Per-test configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected cases (filters/assumes) per test.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` / filter); draw another.
    Reject(String),
    /// The property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (discard, not failure).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Deterministic xoshiro256++ RNG handed to strategies; also accumulates
/// `Debug` representations of the bindings generated for the running case
/// so failures can report their inputs (the shim does not shrink).
#[derive(Debug)]
pub struct TestRng {
    s: [u64; 4],
    bindings: Vec<String>,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        TestRng {
            s,
            bindings: Vec::new(),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Record one generated binding (used by the `proptest!` expansion).
    pub fn record_binding(&mut self, repr: String) {
        self.bindings.push(repr);
    }
}

/// Runs the cases of one property.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// A runner for the property named `name`.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Run the property until `config.cases` cases pass.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case,
    /// reporting the case number, seed, and every generated input.
    pub fn run<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Deterministic per-test seed: failures reproduce on re-run.
        let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
        for b in self.name.bytes() {
            name_hash = (name_hash ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut draw = 0u64;
        while case < self.config.cases {
            let seed = name_hash ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            draw += 1;
            let mut rng = TestRng::from_seed(seed);
            match f(&mut rng) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        panic!(
                            "property '{}': too many rejected cases ({rejects}); \
                             weaken the filters or assumptions",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    let inputs = if rng.bindings.is_empty() {
                        String::from("(no recorded inputs)")
                    } else {
                        rng.bindings.join("\n  ")
                    };
                    panic!(
                        "property '{}' failed at case {case} (seed {seed:#x}): {msg}\n\
                         inputs:\n  {inputs}\n\
                         (shim runner: inputs are reported, not shrunk)",
                        self.name
                    );
                }
            }
        }
    }
}

//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
pub struct Any<A>(core::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_arbitrary_float {
    ($($t:ty, $bits:ty, $from:path);*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mostly raw bit patterns (covering the full exponent
                // range, NaNs, infinities), with a pinch of the values
                // edge cases love.
                match rng.next_u64() % 8 {
                    0 => {
                        const SPECIAL: [$t; 8] = [
                            0.0, -0.0, 1.0, -1.0,
                            <$t>::INFINITY, <$t>::NEG_INFINITY,
                            <$t>::MIN_POSITIVE, <$t>::EPSILON,
                        ];
                        SPECIAL[(rng.next_u64() % 8) as usize]
                    }
                    _ => $from(rng.next_u64() as $bits),
                }
            }
        }
    )*};
}
impl_arbitrary_float!(f32, u32, f32::from_bits; f64, u64, f64::from_bits);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

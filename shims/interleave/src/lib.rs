//! Deterministic schedule exploration for explicit state machines — a
//! loom-style shim.
//!
//! Where loom instruments real atomics and re-runs closures under every
//! schedule, this shim takes the *model-checking* route: the protocol
//! under test is written down as an explicit state machine (a type
//! implementing [`Model`]) and [`explore`] enumerates **every** reachable
//! interleaving breadth-first, deduplicating states by hash. Each visited
//! state is checked against the model's [`Model::invariant`]; terminal
//! states must be [`Model::is_accepting`] (otherwise they are deadlocks)
//! and pass [`Model::final_check`]. A violation comes back with the full
//! action trace from the initial state — a minimal counterexample
//! schedule, since BFS reaches every state by a shortest path first.
//!
//! The state space must be finite (bound your model: chunk counts,
//! budgets, backoff ladders). `max_states` is a safety net, not a
//! sampling knob: a truncated exploration reports `truncated = true` so
//! callers can fail the test instead of trusting partial coverage.

use std::collections::{HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// An explicit-state model of a concurrent protocol.
///
/// States are the full shared+per-thread configuration; actions are the
/// atomic steps threads can take (one action = one indivisible transition,
/// e.g. a single CAS, not a whole critical section).
pub trait Model: Clone + Eq + Hash {
    /// One atomic step some thread can take.
    type Action: Clone + Debug;

    /// Every action enabled in this state (typically one per runnable
    /// thread). An empty vec marks the state terminal.
    fn actions(&self) -> Vec<Self::Action>;

    /// The successor state after `action`. Must be deterministic: any
    /// nondeterminism belongs in `actions()` as distinct actions.
    fn apply(&self, action: &Self::Action) -> Self;

    /// Safety property that must hold in **every** reachable state.
    fn invariant(&self) -> Result<(), String>;

    /// Is a terminal (no enabled actions) state an acceptable end state?
    /// Terminal non-accepting states are reported as deadlocks.
    fn is_accepting(&self) -> bool;

    /// Extra property checked on accepting terminal states only
    /// (e.g. "every chunk executed exactly once").
    fn final_check(&self) -> Result<(), String> {
        Ok(())
    }
}

/// A property violation plus the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct Violation<A> {
    /// What went wrong (from `invariant`/`final_check`, or a deadlock).
    pub message: String,
    /// The shortest action sequence from the initial state to the bad
    /// state.
    pub trace: Vec<A>,
}

/// The result of exhausting (or truncating) the state space.
#[derive(Debug)]
pub struct Exploration<A> {
    /// Distinct states reached.
    pub states: usize,
    /// Transitions evaluated (including ones into already-seen states).
    pub transitions: usize,
    /// Longest shortest-path depth reached.
    pub max_depth: usize,
    /// The first violation found (BFS order: a minimal one), if any.
    pub violation: Option<Violation<A>>,
    /// True when `max_states` stopped the search before exhaustion —
    /// treat the run as inconclusive, not as a pass.
    pub truncated: bool,
}

impl<A> Exploration<A> {
    /// Did the exploration exhaust the state space with no violation?
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

/// Reconstruct the action trace from the initial state to `idx`.
fn trace_to<A: Clone>(parents: &[Option<(usize, A)>], mut idx: usize) -> Vec<A> {
    let mut trace = Vec::new();
    while let Some((parent, action)) = &parents[idx] {
        trace.push(action.clone());
        idx = *parent;
    }
    trace.reverse();
    trace
}

/// Breadth-first exploration of every state reachable from `initial`,
/// stopping at the first violation or after `max_states` distinct states.
pub fn explore<M: Model>(initial: M, max_states: usize) -> Exploration<M::Action> {
    let mut index: HashMap<M, usize> = HashMap::new();
    let mut parents: Vec<Option<(usize, M::Action)>> = Vec::new();
    let mut depths: Vec<usize> = Vec::new();
    let mut queue: VecDeque<(M, usize)> = VecDeque::new();
    let mut transitions = 0usize;
    let mut max_depth = 0usize;
    let mut truncated = false;

    index.insert(initial.clone(), 0);
    parents.push(None);
    depths.push(0);
    queue.push_back((initial, 0));

    let mut violation = None;
    while let Some((state, idx)) = queue.pop_front() {
        max_depth = max_depth.max(depths[idx]);
        if let Err(message) = state.invariant() {
            violation = Some(Violation {
                message,
                trace: trace_to(&parents, idx),
            });
            break;
        }
        let actions = state.actions();
        if actions.is_empty() {
            let verdict = if state.is_accepting() {
                state.final_check()
            } else {
                Err("deadlock: no enabled actions in a non-accepting state".to_string())
            };
            if let Err(message) = verdict {
                violation = Some(Violation {
                    message,
                    trace: trace_to(&parents, idx),
                });
                break;
            }
            continue;
        }
        for action in actions {
            let next = state.apply(&action);
            transitions += 1;
            if index.contains_key(&next) {
                continue;
            }
            if index.len() >= max_states {
                truncated = true;
                continue;
            }
            let next_idx = parents.len();
            index.insert(next.clone(), next_idx);
            parents.push(Some((idx, action)));
            depths.push(depths[idx] + 1);
            queue.push_back((next, next_idx));
        }
    }

    Exploration {
        states: index.len(),
        transitions,
        max_depth,
        violation,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads doing a non-atomic read-modify-write increment: the
    /// canonical lost-update race. `tmp[t]` holds the value each thread
    /// read; `None` means the thread hasn't loaded yet / has stored.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct RacyCounter {
        value: u8,
        tmp: [Option<u8>; 2],
        done: [bool; 2],
        atomic: bool,
    }

    #[derive(Clone, Debug)]
    enum CounterAction {
        Load(usize),
        Store(usize),
        FetchAdd(usize),
    }

    impl RacyCounter {
        fn new(atomic: bool) -> Self {
            RacyCounter {
                value: 0,
                tmp: [None, None],
                done: [false, false],
                atomic,
            }
        }
    }

    impl Model for RacyCounter {
        type Action = CounterAction;

        fn actions(&self) -> Vec<CounterAction> {
            let mut acts = Vec::new();
            for t in 0..2 {
                if self.done[t] {
                    continue;
                }
                if self.atomic {
                    acts.push(CounterAction::FetchAdd(t));
                } else if self.tmp[t].is_none() {
                    acts.push(CounterAction::Load(t));
                } else {
                    acts.push(CounterAction::Store(t));
                }
            }
            acts
        }

        fn apply(&self, action: &CounterAction) -> Self {
            let mut next = self.clone();
            match *action {
                CounterAction::Load(t) => next.tmp[t] = Some(self.value),
                CounterAction::Store(t) => {
                    next.value = self.tmp[t].expect("store follows load") + 1;
                    next.tmp[t] = None;
                    next.done[t] = true;
                }
                CounterAction::FetchAdd(t) => {
                    next.value = self.value + 1;
                    next.done[t] = true;
                }
            }
            next
        }

        fn invariant(&self) -> Result<(), String> {
            Ok(())
        }

        fn is_accepting(&self) -> bool {
            self.done.iter().all(|&d| d)
        }

        fn final_check(&self) -> Result<(), String> {
            if self.value == 2 {
                Ok(())
            } else {
                Err(format!("lost update: final value {} != 2", self.value))
            }
        }
    }

    #[test]
    fn lost_update_race_is_found_with_a_trace() {
        let result = explore(RacyCounter::new(false), 10_000);
        let v = result.violation.expect("the race must be found");
        assert!(v.message.contains("lost update"), "{}", v.message);
        // Minimal counterexample: both threads load before either stores.
        assert_eq!(v.trace.len(), 4, "trace {:?}", v.trace);
        assert!(!result.truncated);
    }

    #[test]
    fn atomic_counter_verifies() {
        let result = explore(RacyCounter::new(true), 10_000);
        assert!(
            result.verified(),
            "unexpected violation: {:?}",
            result.violation
        );
        assert!(result.states >= 4);
    }

    /// Two threads taking two locks in opposite order: AB–BA deadlock.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct AbBa {
        /// lock holder per lock, or None.
        locks: [Option<usize>; 2],
        /// locks acquired per thread (0, 1, or 2 = done).
        progress: [u8; 2],
    }

    #[derive(Clone, Debug)]
    struct Acquire {
        thread: usize,
        lock: usize,
    }

    impl Model for AbBa {
        type Action = Acquire;

        fn actions(&self) -> Vec<Acquire> {
            let mut acts = Vec::new();
            for t in 0..2 {
                if self.progress[t] >= 2 {
                    continue;
                }
                // Thread 0 takes lock 0 then 1; thread 1 takes 1 then 0.
                let want = if t == 0 {
                    self.progress[t] as usize
                } else {
                    1 - self.progress[t] as usize
                };
                if self.locks[want].is_none() {
                    acts.push(Acquire {
                        thread: t,
                        lock: want,
                    });
                }
            }
            acts
        }

        fn apply(&self, action: &Acquire) -> Self {
            let mut next = self.clone();
            next.locks[action.lock] = Some(action.thread);
            next.progress[action.thread] += 1;
            next
        }

        fn invariant(&self) -> Result<(), String> {
            Ok(())
        }

        fn is_accepting(&self) -> bool {
            self.progress.iter().all(|&p| p >= 2)
        }
    }

    #[test]
    fn abba_deadlock_is_detected() {
        let result = explore(
            AbBa {
                locks: [None, None],
                progress: [0, 0],
            },
            10_000,
        );
        let v = result.violation.expect("deadlock must be found");
        assert!(v.message.contains("deadlock"), "{}", v.message);
        assert_eq!(v.trace.len(), 2, "each thread took its first lock");
    }

    #[test]
    fn truncation_is_reported_not_silently_passed() {
        let result = explore(RacyCounter::new(false), 3);
        assert!(result.truncated);
        assert!(!result.verified());
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small* subset of `rand`'s 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges. The generator is
//! xoshiro256++ seeded via splitmix64 — deterministic across platforms,
//! which is all the workloads require (they never promise stream
//! compatibility with upstream `rand`, only determinism in the seed).

#![warn(missing_docs)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // 53-bit resolution; hi is attainable (inclusive).
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (API-compatible stand-in for
    /// `rand::rngs::StdRng`; the output stream differs from upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let stream = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..100)
                .map(|_| r.gen_range(0u64..1_000_000))
                .collect::<Vec<_>>()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(
            stream(7),
            stream(8),
            "different seeds must give different streams"
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let g = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(11);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.gen_range(0usize..8)] += 1;
        }
        for b in buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }
}

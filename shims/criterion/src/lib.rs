//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of criterion's API its benches use:
//! [`black_box`], [`Criterion::benchmark_group`], group `sample_size` /
//! `throughput` / `bench_function` / `finish`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — per-sample means with a min/max
//! spread, printed as aligned text — but the timing loop is real, so
//! `cargo bench` still produces usable relative numbers.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque a value to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse command-line options (accepted and ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 30,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'c> BenchmarkGroup<'c> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        if samples.is_empty() {
            println!("  {}/{id:<40} (no iterations)", self.name);
            return self;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let spread = format!(
            "[{} .. {}]",
            fmt_time(samples[0]),
            fmt_time(samples[samples.len() - 1])
        );
        let tput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.1} Melem/s", n as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "  {}/{id:<40} {:>12}  {spread}{tput}",
            self.name,
            fmt_time(mean)
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to benchmark closures; drives the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `f` (the shim uses a fixed small batch per
    /// sample rather than criterion's adaptive warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let batch = 8u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Produce a `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! # cascaded-execution
//!
//! A reproduction, as a Rust library, of
//!
//! > R. E. Anderson, T. D. Nguyen, J. Zahorjan.
//! > *Cascaded Execution: Speeding Up Unparallelized Execution on
//! > Shared-Memory Multiprocessors.* IPPS/SPDP 1999.
//!
//! Loops a parallelizing compiler cannot parallelize must run
//! sequentially, and by Amdahl's law they dominate as everything else
//! speeds up. Cascaded execution rotates the *sequential* execution of
//! such a loop across the machine's processors in chunks — exactly one
//! processor executes at a time — while the waiting processors run
//! *helper phases* that optimize their memory state for their next turn:
//! prefetching operands, or restructuring read-only data into dense
//! per-processor sequential buffers.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`engine`] | `cascade-core` | the cascade scheduler, helper policies, chunk planning, the three simulators |
//! | [`mem`] | `cascade-mem` | the memory-hierarchy simulator and the paper's Table-1 machines |
//! | [`trace`] | `cascade-trace` | workload descriptions: address spaces, loop specs, arenas |
//! | [`rt`] | `cascade-rt` | the real-thread runtime (atomic token, prefetch intrinsics, packing) |
//! | [`wave5`] | `cascade-wave5` | the synthetic PARMVR workload (15 loops, 256KB-17MB footprints) |
//! | [`synth`] | `cascade-synth` | the §3.4 synthetic future-machine loop |
//! | [`kernels`] | `cascade-kernels` | extra unparallelizable kernels (tri-solve, pointer chase, IIR, histogram, SpMV) |
//! | [`pic`] | `cascade-pic-app` | a real 1-D PIC plasma application whose mover runs under the cascaded runtime |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Quick example
//!
//! ```
//! use cascaded_execution::{
//!     machines, run_cascaded, run_sequential, CascadeConfig, HelperPolicy,
//! };
//! use cascaded_execution::wave5::{Parmvr, ParmvrParams};
//!
//! // A miniature PARMVR (scale 1.0 reproduces the paper's enlarged problem).
//! let parmvr = Parmvr::build(ParmvrParams { scale: 0.02, seed: 7 });
//! let machine = machines::pentium_pro();
//!
//! let baseline = run_sequential(&machine, &parmvr.workload, 2, true);
//! let cascaded = run_cascaded(&machine, &parmvr.workload, &CascadeConfig {
//!     nprocs: 4,
//!     policy: HelperPolicy::Restructure { hoist: true },
//!     ..CascadeConfig::default()
//! });
//! println!("overall speedup: {:.2}", cascaded.overall_speedup_vs(&baseline));
//! assert!(cascaded.overall_speedup_vs(&baseline) > 1.0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and modelling decisions, and
//! `EXPERIMENTS.md` for paper-vs-measured results of every table/figure.

#![warn(missing_docs)]

pub use cascade_core as engine;
pub use cascade_kernels as kernels;
pub use cascade_mem as mem;
pub use cascade_pic_app as pic;
pub use cascade_rt as rt;
pub use cascade_synth as synth;
pub use cascade_trace as trace;
pub use cascade_wave5 as wave5;

pub use cascade_core::{
    run_cascaded, run_sequential, run_unbounded, AmdahlModel, CascadeConfig, ChunkPlan,
    HelperPolicy, LoopReport, RunReport, UnboundedConfig, UNBOUNDED_PROCS,
};
pub use cascade_mem::{machines, MachineConfig};
pub use cascade_trace::{
    AddressSpace, Arena, IndexStore, LoopSpec, Mode, Pattern, StreamRef, Workload,
};
